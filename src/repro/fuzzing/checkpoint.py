"""Crash-safe campaign checkpoint/resume.

A long campaign must survive the death of the *fuzzer* process, not
just the target's.  The checkpoint captures everything the campaign
loop's future depends on — corpus entries with their scheduling
metadata, the virgin coverage map, the triage dedup tables, the
mutator RNG state, the virtual clock, and the executor's cumulative
stats — so ``Campaign.resume(path, executor)`` continues **bit-
identically** to a run that was never interrupted: the RNG replays the
same mutation stream, the clock re-enters at the same virtual
nanosecond, and the corpus scheduler picks the same entries.

Durability rides on :mod:`repro.store`'s framed-file stack:

- **atomic writes** — tmp + fsync + ``os.replace`` + parent-directory
  fsync, so a crash mid-checkpoint leaves the previous file intact
  and the rename itself survives power loss;
- **integrity framing** — the ``RPRCKPT1`` header carries a CRC32 of
  the pickle payload, so silent on-disk corruption (bit rot, a torn
  page, a partial copy) is detected at load — with the byte offset and
  expected/actual CRC in the error — instead of surfacing as an
  arbitrary unpickling error or, worse, a subtly wrong resume;
- **rotation** — each save shifts the previous checkpoint to
  ``path.1`` (and so on up to *keep* generations), and loading falls
  back through the generations to the newest file that passes magic +
  CRC + version, so one corrupted checkpoint costs an interval of
  progress, never the campaign.

Because the write path is :func:`repro.store.atomic_write`, campaign
checkpoints also sit behind the disk-fault chaos seam
(``FaultPlan.DISK_SITES``): torn writes, ``ENOSPC``, fsync ``EIO``,
lost renames, and bit flips inject here without checkpoint-specific
hooks.

Executor process state (booted VMs, harness snapshots) is *not*
serialised: on resume the executor re-boots and the clock is then
pinned back to the checkpointed instant.  For every correct mechanism
this is exact — each test case starts from fresh-process state by
construction — and it keeps checkpoints small and mechanism-agnostic.
(The naive persistent executor's cross-input pollution is the one
thing resume cannot reconstruct; that mechanism is broken by design.)
"""

from __future__ import annotations

import dataclasses
import os
import pickle

from repro.store.errors import FrameError
from repro.store.framed import read_framed, write_framed
from repro.store.io import generation_path as _generation_path

CHECKPOINT_VERSION = 1
CHECKPOINT_MAGIC = b"RPRCKPT1"
#: Generations kept on disk by default: the live file plus ``path.1``.
DEFAULT_KEEP = 2


class CheckpointError(RuntimeError):
    """Unreadable, truncated, or incompatible checkpoint file."""


def capture_state(campaign) -> dict:
    """One consistent snapshot of everything resume needs."""
    executor = campaign.executor
    return {
        "version": CHECKPOINT_VERSION,
        "kind": "campaign",
        "mechanism": executor.mechanism,
        "seed": campaign.config.seed,
        "shard_id": campaign.config.shard_id,
        "budget_ns": campaign.config.budget_ns,
        "start_ns": campaign.run_start_ns,
        "clock_ns": campaign.clock.now_ns,
        "execs": campaign.execs,
        "current_entry_id": campaign.current_entry_id,
        "rng_state": campaign.rng.getstate(),
        "corpus": campaign.corpus,
        "virgin": campaign.virgin,
        "triage": campaign.triage,
        "timeline": list(campaign._timeline),
        "next_sample_ns": campaign._next_sample_ns,
        "executor_state": executor.snapshot_state(),
        # Input-to-state stage state + per-stage efficacy accounts.
        # Both read back via .get() so pre-I2S checkpoints stay
        # loadable (version stays 1: every added key is optional).
        "i2s": campaign._i2s.snapshot() if campaign._i2s else None,
        "stage_stats": {
            name: dataclasses.replace(stats)
            for name, stats in campaign.stage_stats.items()
        },
        # Informational integrity summary (the full ledger rides inside
        # executor_state): lets reports and humans see at a glance what
        # the sentinel observed without unpickling executor internals.
        "integrity": _integrity_summary(executor),
    }


def _integrity_summary(executor) -> dict | None:
    """Sentinel ledger summary, looking through a supervisor wrapper."""
    sentinel = getattr(executor, "sentinel", None)
    if sentinel is None:
        sentinel = getattr(getattr(executor, "inner", None), "sentinel", None)
    return sentinel.ledger.summary() if sentinel is not None else None


def save_checkpoint(campaign, path: str, keep: int = DEFAULT_KEEP) -> None:
    """Atomically persist *campaign*'s state to *path*.

    Keeps up to *keep* generations: the fresh file at *path*, the
    previous one at ``path.1``, and so on.
    """
    save_state(capture_state(campaign), path, keep=keep)


def save_state(state: dict, path: str, keep: int = DEFAULT_KEEP) -> None:
    """Persist an arbitrary checkpoint state dict with the full
    ``RPRCKPT1`` durability stack (atomic write + parent-dir fsync,
    CRC framing, rotation — all via :mod:`repro.store`).  *state* must
    carry ``version`` (and a ``kind`` so loaders can tell campaign and
    parallel checkpoints apart); the single-campaign and multi-shard
    checkpoints share this framing.
    """
    body = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    write_framed(path, CHECKPOINT_MAGIC, body, keep=max(1, keep))


def _load_one(path: str) -> dict:
    """Read and fully validate a single checkpoint file.

    Framing failures (bad magic, truncation, CRC mismatch) re-raise
    the store's :class:`FrameError` as :class:`CheckpointError`, so
    messages carry the byte offset and expected/actual CRC.
    """
    try:
        body = read_framed(path, CHECKPOINT_MAGIC)
    except FrameError as error:
        raise CheckpointError(f"checkpoint {error}")
    try:
        state = pickle.loads(body)
    except Exception as error:  # truncated/corrupt pickle stream
        raise CheckpointError(f"corrupt checkpoint {path!r}: {error}")
    if not isinstance(state, dict):
        # A payload can pass magic + CRC yet unpickle to the wrong
        # shape (e.g. a stray file that happened to be framed); that is
        # corruption too, not a reason to blow up with AttributeError.
        raise CheckpointError(
            f"checkpoint {path!r} payload is {type(state).__name__}, "
            "not a state dict"
        )
    if state.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {state.get('version')} != {CHECKPOINT_VERSION}"
            f" in {path!r}"
        )
    return state


def load_checkpoint(path: str) -> dict:
    """Load the newest valid checkpoint generation rooted at *path*.

    Tries *path* first, then ``path.1``, ``path.2``, ... — returning
    the first generation that passes magic + CRC + version.  Raises
    :class:`CheckpointError` (describing every failure) only when no
    generation is loadable.
    """
    return load_state(path)


def load_state(path: str) -> dict:
    """Generation-fallback loader shared by campaign and parallel
    checkpoints (see :func:`load_checkpoint` for the search order).

    Every failure mode — unreadable file, bad magic, CRC mismatch,
    corrupt pickle, wrong payload shape, version skew — surfaces as a
    :class:`CheckpointError` carrying the byte offset (and, for
    checksum failures, the expected/actual CRC32) of the damage; when
    *all* generations fail, the raised error names every generation
    tried with its individual reason, so an operator can see at a
    glance which files were consulted.
    """
    failures: list[str] = []
    tried: list[str] = []
    generation = 0
    while True:
        candidate = _generation_path(path, generation)
        if generation > 0 and not os.path.exists(candidate):
            break
        tried.append(candidate)
        try:
            return _load_one(candidate)
        except CheckpointError as error:
            failures.append(str(error))
        generation += 1
    raise CheckpointError(
        f"no loadable checkpoint generation (tried {', '.join(tried)}): "
        + "; ".join(failures)
    )
