"""The integrity sentinel's escalation vehicle.

:class:`IntegrityFault` carries ``site = "restore"`` so the existing
:class:`~repro.execution.supervised.SupervisedExecutor` degradation
ladder handles it without modification: below the escalation threshold
the input is retried in place, past it the persistent process is
respawned, and repeated escalations fall back to forkserver mode.  The
sentinel never implements its own recovery loop — detection decides
*that* something is wrong and repair handles the easy cases; everything
harder is routed into the one battle-tested ladder.
"""

from __future__ import annotations


class IntegrityFault(Exception):
    """A restore-integrity violation the sentinel could not repair.

    Raised *instead of* returning an exec result, so a corrupted
    execution is voided (never counted, never trusted) exactly like an
    injected infrastructure fault would be.
    """

    #: Routes the fault into the supervisor's restore-escalation ladder.
    site = "restore"

    def __init__(
        self,
        detail: str,
        dimensions: tuple[str, ...] = (),
        source: str = "oracle",
    ):
        super().__init__(detail)
        self.detail = detail
        self.dimensions = tuple(dimensions)
        self.source = source

    def __reduce__(self):
        return (IntegrityFault, (self.detail, self.dimensions, self.source))

    def __str__(self) -> str:
        dims = ",".join(self.dimensions) or "?"
        return f"integrity violation [{self.source}:{dims}]: {self.detail}"
