"""LeakLedger: attribution, quarantine, and the diagnostic bundle.

Every integrity violation the sentinel observes — digest leak, shadow
divergence, analysis contradiction — becomes one :class:`LeakEvent`,
stamped in *virtual* time and attributed to the state dimension(s) that
leaked plus the input that was executing when the restore went wrong.
The ledger is plain picklable data: it rides inside campaign
checkpoints, so a resumed campaign knows every leak the original run
saw and never re-executes a known-divergent input.

When a ``bundle_path`` is configured each event is also appended to a
JSONL diagnostic bundle on the host filesystem — the artifact a human
debugging a restore regression actually wants.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.execution.common import ExecResult


@dataclass
class LeakEvent:
    """One detected integrity violation, stamped in virtual time."""

    exec_index: int                  # persistent exec count at detection
    at_ns: int                       # virtual clock at detection
    source: str                      # "oracle" | "shadow" | "baseline"
    dimensions: tuple[str, ...]      # leaking state dimension(s)
    input_sha: str                   # key of the input that was running
    detail: str = ""
    repaired: bool = False           # targeted in-place repair succeeded
    escalated: bool = False          # handed to the supervised ladder
    contradictions: tuple[str, ...] = ()  # dims static analysis swore clean

    def to_json(self) -> dict:
        return {
            "exec_index": self.exec_index,
            "at_ns": self.at_ns,
            "source": self.source,
            "dimensions": list(self.dimensions),
            "input_sha": self.input_sha,
            "detail": self.detail,
            "repaired": self.repaired,
            "escalated": self.escalated,
            "contradictions": list(self.contradictions),
        }


@dataclass
class QuarantinedInput:
    """An input whose persistent-mode result diverged from ground truth.

    ``result`` is the *shadow* (fresh-VM) observation — the answer a
    correct execution gives — so replaying from quarantine returns
    trustworthy data instead of re-running an input that is known to
    interact badly with restoration.
    """

    data: bytes
    result: ExecResult
    at_ns: int
    reason: str = "shadow-divergence"


class LeakLedger:
    """Append-only record of what the sentinel saw and did."""

    def __init__(self, bundle_path: str | None = None):
        self.events: list[LeakEvent] = []
        self.by_dimension: dict[str, int] = {}
        self.quarantine: dict[str, QuarantinedInput] = {}
        self.bundle_path = bundle_path

    def record(self, event: LeakEvent) -> None:
        self.events.append(event)
        for dimension in event.dimensions:
            self.by_dimension[dimension] = (
                self.by_dimension.get(dimension, 0) + 1
            )
        if self.bundle_path is not None:
            with open(self.bundle_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(event.to_json(), sort_keys=True))
                handle.write("\n")

    def quarantine_input(
        self, key: str, data: bytes, result: ExecResult, at_ns: int,
        reason: str = "shadow-divergence",
    ) -> None:
        self.quarantine[key] = QuarantinedInput(
            data=bytes(data), result=result, at_ns=at_ns, reason=reason,
        )

    @property
    def leak_count(self) -> int:
        return len(self.events)

    def summary(self) -> dict:
        """Compact picklable digest for checkpoints and reports."""
        return {
            "leaks": len(self.events),
            "by_dimension": dict(self.by_dimension),
            "quarantined": len(self.quarantine),
            "repaired": sum(1 for e in self.events if e.repaired),
            "escalated": sum(1 for e in self.events if e.escalated),
            "contradictions": sum(
                len(e.contradictions) for e in self.events
            ),
        }

    # -- checkpoint support ---------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "events": list(self.events),
            "by_dimension": dict(self.by_dimension),
            "quarantine": dict(self.quarantine),
        }

    def restore_state(self, state: dict) -> None:
        self.events = list(state["events"])
        self.by_dimension = dict(state["by_dimension"])
        self.quarantine = dict(state["quarantine"])
