"""IntegritySentinel: detect → attribute → repair → escalate.

The sentinel wires the oracle, the shadow differ, and the ledger into
the ClosureX executor's exec loop:

1. **detect** — after every ``digest_every``-th restore, digest the
   four state dimensions and diff against the pristine baseline.
2. **attribute** — a differing dimension *is* the attribution; the
   ledger records it against the input that was executing, and any
   dimension static analysis had proven clean becomes a loud
   ``analysis.contradiction`` (one of the two provers is wrong — a VM
   bug or an analysis bug — which a correctness-critical system must
   surface, not average away).
3. **repair** — re-run exactly the leaking dimensions' restore sweeps
   in place (:meth:`ClosureXHarness.repair_dimensions`) and re-check.
4. **escalate** — if the recheck still fails, or a shadow replay shows
   the persistent run diverging from fresh-process ground truth, raise
   :class:`IntegrityFault`: the executor respawns its process and the
   supervised ladder voids the exec, retries, and can ultimately
   degrade to forkserver mode.  Divergent inputs are quarantined with
   their ground-truth result so the retry (and any resumed campaign)
   replays the correct answer instead of re-executing them.

Every digest, repair, and shadow replay is charged to the shared
virtual clock — enabling the sentinel costs budget, never determinism.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.execution.common import ExecResult
from repro.integrity.faults import IntegrityFault
from repro.integrity.ledger import LeakEvent, LeakLedger
from repro.integrity.oracle import IntegrityVerdict, RestoreOracle
from repro.integrity.shadow import ShadowDiffer

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.execution.closurex import ClosureXExecutor
    from repro.runtime.harness import IterationResult


def _input_key(data: bytes) -> str:
    # Same key scheme as the supervisor's quarantine, so diagnostics
    # from both layers name the same input identically.
    return hashlib.sha1(data).hexdigest()[:16]


@dataclass
class EscalationPolicy:
    """Cadence and escalation knobs of the sentinel."""

    digest_every: int = 1         # oracle check every Nth exec (0 = off)
    shadow_every: int = 64        # fresh-VM differential every Nth (0 = off)
    max_repair_attempts: int = 1  # in-place repairs before escalating
    quarantine_divergent: bool = True


@dataclass
class SentinelStats:
    """Cumulative sentinel counters (also surfaced as metrics)."""

    baselines: int = 0
    checks: int = 0
    leaks: int = 0
    repairs: int = 0
    repair_failures: int = 0
    escalations: int = 0
    shadow_runs: int = 0
    divergences: int = 0
    contradictions: int = 0
    quarantine_hits: int = 0
    digest_ns: int = 0
    repair_ns: int = 0
    shadow_ns: int = 0

    @property
    def overhead_ns(self) -> int:
        return self.digest_ns + self.repair_ns + self.shadow_ns


class IntegritySentinel:
    """Runtime state-integrity verification for one ClosureX executor."""

    def __init__(
        self,
        policy: EscalationPolicy | None = None,
        bundle_path: str | None = None,
    ):
        self.policy = policy if policy is not None else EscalationPolicy()
        self.ledger = LeakLedger(bundle_path)
        self.oracle = RestoreOracle()
        self.shadow: ShadowDiffer | None = None
        self.stats = SentinelStats()
        self.exec_index = 0

    # -- executor hooks -------------------------------------------------

    def on_boot(self, executor: "ClosureXExecutor") -> None:
        """(Re)capture the pristine baseline after a harness (re)boot."""
        assert executor.harness is not None
        cost_ns = self.oracle.capture_baseline(executor.harness)
        executor.kernel.charge(cost_ns)
        self.stats.baselines += 1
        self.stats.digest_ns += cost_ns
        if self.shadow is None:
            self.shadow = ShadowDiffer(executor)
        telemetry = executor.telemetry
        if telemetry.enabled:
            telemetry.metrics.counter("integrity.baselines").inc()

    def check_quarantine(
        self, executor: "ClosureXExecutor", data: bytes,
    ) -> ExecResult | None:
        """Ground-truth replay for inputs quarantined by divergence."""
        record = self.ledger.quarantine.get(_input_key(data))
        if record is None:
            return None
        self.stats.quarantine_hits += 1
        telemetry = executor.telemetry
        if telemetry.enabled:
            telemetry.metrics.counter("integrity.quarantine_hits").inc()
        return record.result

    def after_exec(
        self,
        executor: "ClosureXExecutor",
        data: bytes,
        iteration: "IterationResult",
    ) -> None:
        """Post-restore verification; raises :class:`IntegrityFault`
        when the persistent process cannot be healed in place."""
        self.exec_index += 1
        policy = self.policy
        if policy.digest_every and self.exec_index % policy.digest_every == 0:
            verdict = self._oracle_check(executor)
            if not verdict.clean:
                self._handle_leak(executor, _input_key(data), verdict)
        if policy.shadow_every and self.exec_index % policy.shadow_every == 0:
            self._shadow_check(executor, data, iteration)

    # -- oracle path ----------------------------------------------------

    def _oracle_check(self, executor: "ClosureXExecutor") -> IntegrityVerdict:
        assert executor.harness is not None
        verdict = self.oracle.check(executor.harness)
        executor.kernel.charge(verdict.cost_ns)
        self.stats.checks += 1
        self.stats.digest_ns += verdict.cost_ns
        if executor.telemetry.enabled:
            executor.telemetry.metrics.counter("integrity.checks").inc()
        return verdict

    def _handle_leak(
        self,
        executor: "ClosureXExecutor",
        input_sha: str,
        verdict: IntegrityVerdict,
    ) -> None:
        assert executor.harness is not None
        harness = executor.harness
        dimensions = verdict.leaked_dimensions
        telemetry = executor.telemetry
        self.stats.leaks += 1
        if telemetry.enabled:
            telemetry.metrics.counter("integrity.leaks").inc()
            for dimension in dimensions:
                telemetry.metrics.counter(
                    f"integrity.leak.{dimension}"
                ).inc()
            if telemetry.tracer.enabled:
                telemetry.tracer.event(
                    "integrity.leak",
                    dimensions=",".join(dimensions),
                    exec_index=self.exec_index,
                    digest=verdict.digest.describe(),
                )

        detail = f"restore leak in {','.join(dimensions)}"
        contradictions = self._contradictions(executor, dimensions)
        if contradictions:
            detail += (
                f" [contradiction: static analysis proved "
                f"{','.join(contradictions)} clean — VM bug or analysis bug]"
            )

        repaired = False
        for _attempt in range(self.policy.max_repair_attempts):
            repair_ns = harness.repair_dimensions(dimensions)
            executor.kernel.charge(repair_ns)
            self.stats.repairs += 1
            self.stats.repair_ns += repair_ns
            if telemetry.enabled:
                telemetry.metrics.counter("integrity.repairs").inc()
            recheck = self._oracle_check(executor)
            if recheck.clean:
                repaired = True
                if telemetry.enabled and telemetry.tracer.enabled:
                    telemetry.tracer.event(
                        "integrity.repair",
                        dimensions=",".join(dimensions),
                        cost_ns=repair_ns,
                    )
                break

        self.ledger.record(LeakEvent(
            exec_index=self.exec_index,
            at_ns=executor.clock.now_ns,
            source="oracle",
            dimensions=dimensions,
            input_sha=input_sha,
            detail=detail,
            repaired=repaired,
            escalated=not repaired,
            contradictions=contradictions,
        ))
        if not repaired:
            self.stats.repair_failures += 1
            self.stats.escalations += 1
            if telemetry.enabled:
                telemetry.metrics.counter("integrity.escalations").inc()
                if telemetry.tracer.enabled:
                    telemetry.tracer.event(
                        "integrity.escalate",
                        dimensions=",".join(dimensions),
                    )
            raise IntegrityFault(detail, dimensions, source="oracle")

    def _contradictions(
        self, executor: "ClosureXExecutor", dimensions: tuple[str, ...],
    ) -> tuple[str, ...]:
        """Leaked dimensions the static analysis had proven clean."""
        assert executor.harness is not None
        pollution = executor.harness.config.pollution
        if pollution is None:
            return ()
        contradicted = tuple(
            d for d in dimensions if pollution.is_clean(d)
        )
        if contradicted:
            self.stats.contradictions += len(contradicted)
            telemetry = executor.telemetry
            if telemetry.enabled:
                for dimension in contradicted:
                    telemetry.metrics.counter("analysis.contradiction").inc()
                    if telemetry.tracer.enabled:
                        telemetry.tracer.event(
                            "analysis.contradiction",
                            dimension=dimension,
                            exec_index=self.exec_index,
                        )
        return contradicted

    # -- shadow path ----------------------------------------------------

    def _shadow_check(
        self,
        executor: "ClosureXExecutor",
        data: bytes,
        iteration: "IterationResult",
    ) -> None:
        assert self.shadow is not None
        assert executor.harness is not None and executor.harness.vm is not None
        observation = self.shadow.replay(data)
        executor.kernel.charge(observation.cost_ns)
        self.stats.shadow_runs += 1
        self.stats.shadow_ns += observation.cost_ns
        telemetry = executor.telemetry
        if telemetry.enabled:
            telemetry.metrics.counter("integrity.shadow_runs").inc()
        persistent_coverage = executor.harness.vm.coverage_map
        if observation.matches(iteration, persistent_coverage):
            return

        self.stats.divergences += 1
        key = _input_key(data)
        detail = (
            f"persistent run diverged from fresh-process ground truth "
            f"(persistent {iteration.status.value}/rc={iteration.return_code} "
            f"vs shadow {observation.status.value}/"
            f"rc={observation.return_code})"
        )
        if telemetry.enabled:
            telemetry.metrics.counter("integrity.divergences").inc()
            if telemetry.tracer.enabled:
                telemetry.tracer.event(
                    "integrity.divergence",
                    exec_index=self.exec_index,
                    persistent=iteration.status.value,
                    shadow=observation.status.value,
                )
        if self.policy.quarantine_divergent:
            self.ledger.quarantine_input(
                key, data,
                ExecResult(
                    status=observation.status,
                    return_code=observation.return_code,
                    trap=observation.trap,
                    coverage=bytearray(observation.coverage),
                    ns=observation.cost_ns,
                    instructions=observation.instructions,
                ),
                at_ns=executor.clock.now_ns,
            )
        self.ledger.record(LeakEvent(
            exec_index=self.exec_index,
            at_ns=executor.clock.now_ns,
            source="shadow",
            dimensions=(),
            input_sha=key,
            detail=detail,
            repaired=False,
            escalated=True,
        ))
        self.stats.escalations += 1
        if telemetry.enabled:
            telemetry.metrics.counter("integrity.escalations").inc()
        raise IntegrityFault(detail, (), source="shadow")

    # -- checkpoint support ---------------------------------------------

    def snapshot_state(self) -> dict:
        """Checkpointable sentinel state.  The oracle baseline is
        deliberately excluded: a resumed executor re-boots and the
        baseline is recaptured from the fresh process, which is exactly
        what it fingerprints."""
        return {
            "stats": dataclasses.replace(self.stats),
            "ledger": self.ledger.snapshot_state(),
            "exec_index": self.exec_index,
        }

    def restore_state(self, state: dict) -> None:
        self.stats = dataclasses.replace(state["stats"])
        self.ledger.restore_state(state["ledger"])
        self.exec_index = state["exec_index"]
