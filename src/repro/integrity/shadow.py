"""ShadowDiffer: fresh-process ground truth for differential checks.

The digest oracle proves the *mechanism* restored its four dimensions;
it cannot prove the *semantics* survived — pollution flowing through a
channel the digest deliberately excludes (init-chunk contents, state a
pass failed to even track) changes behaviour without changing any
structural fingerprint.  The shadow differ closes that gap the way the
paper validates ClosureX itself: replay the same input in a throwaway
fresh VM — a process that provably has no history — and require the
persistent run's outcome and coverage map to match bit-for-bit.

The shadow VM never sees the chaos injector: ground truth must be
fault-free, and sharing the injector would also perturb its
occurrence counters (every poll advances them), breaking the
determinism of the surrounding campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.runtime.harness import ClosureXHarness, IterationStatus
from repro.vm.errors import VMTrap
from repro.vm.filesystem import VirtualFS

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.execution.closurex import ClosureXExecutor
    from repro.runtime.harness import IterationResult


@dataclass
class ShadowObservation:
    """What one fresh-VM replay of an input observed."""

    status: IterationStatus
    return_code: int | None
    trap: VMTrap | None
    coverage: bytes                  # frozen copy of the shadow map
    instructions: int
    cost_ns: int                     # full price of the replay, all-in

    def matches(self, iteration: "IterationResult",
                persistent_coverage: bytearray) -> bool:
        """Did the persistent run behave exactly like a fresh process?"""
        return (
            self.status is iteration.status
            and self.return_code == iteration.return_code
            and self.coverage == bytes(persistent_coverage)
        )


class ShadowDiffer:
    """Replays inputs in throwaway fresh VMs for differential checking."""

    def __init__(self, executor: "ClosureXExecutor"):
        self.module = executor.module
        self.costs = executor.kernel.costs
        self.config = executor.config
        self.replays = 0

    def replay(self, data: bytes) -> ShadowObservation:
        """One fresh-process execution of *data*; never shares state
        (VM, filesystem, fault injector) with the persistent run."""
        harness = ClosureXHarness(
            self.module,
            fs=VirtualFS(),
            costs=self.costs,
            config=self.config,
        )
        vm = harness.boot(charge_load=True)
        iteration = harness.run_test_case(data, restore=False)
        self.replays += 1
        return ShadowObservation(
            status=iteration.status,
            return_code=iteration.return_code,
            trap=iteration.trap,
            coverage=bytes(vm.coverage_map),
            instructions=iteration.instructions,
            cost_ns=vm.cost + self.costs.shadow_dispatch_ns,
        )
