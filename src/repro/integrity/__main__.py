"""Integrity self-check: ``python -m repro.integrity``.

For every registered target this boots a ClosureX executor with the
sentinel at its strictest cadence (digest after every exec, shadow
replay after every exec) and runs each seed twice through the
persistent loop.  A correct build produces zero leaks and zero
divergences; the process exits non-zero otherwise.  This is the
runtime analogue of ``python -m repro.analysis``: the static gate
proves the passes *should* restore every dimension, this gate checks
that they actually *did*.  CI runs it in the ``integrity`` job.
"""

from __future__ import annotations

import sys

from repro.execution.closurex import ClosureXExecutor
from repro.integrity.sentinel import EscalationPolicy, IntegritySentinel
from repro.sim_os.kernel import Kernel
from repro.targets import all_targets


def check_target(spec) -> tuple[bool, str]:
    """Run one target's seeds under full sentinel scrutiny."""
    module = spec.build_closurex()
    kernel = Kernel()
    sentinel = IntegritySentinel(
        EscalationPolicy(digest_every=1, shadow_every=1)
    )
    executor = ClosureXExecutor(
        module, spec.image_bytes, kernel, sentinel=sentinel
    )
    executor.boot()
    # Two passes over the seeds: the second exercises restoration
    # *after* real target activity, which is where leaks would live.
    for _round in range(2):
        for seed in spec.seeds:
            executor.run(bytes(seed))
    executor.shutdown()
    stats = sentinel.stats
    ok = stats.leaks == 0 and stats.divergences == 0
    line = (
        f"{spec.name}: checks={stats.checks} shadows={stats.shadow_runs} "
        f"leaks={stats.leaks} divergences={stats.divergences} "
        f"overhead={stats.overhead_ns}ns"
    )
    return ok, line


def main() -> int:
    failures = 0
    targets = all_targets()
    for spec in targets:
        ok, line = check_target(spec)
        print(("ok   " if ok else "FAIL ") + line)
        if not ok:
            failures += 1
    print(
        f"\nintegrity self-check: {len(targets) - failures}/{len(targets)} "
        f"targets restore-clean"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
