"""State-integrity sentinel: runtime verification of ClosureX restores.

ClosureX's headline claim is that persistent fuzzing can be *correct*:
the compiler-inserted reset code restores every polluted state
dimension between iterations.  Everything else in this repo *trusts*
that claim; this package *checks* it at runtime and heals the campaign
when it fails:

- :mod:`repro.integrity.digest` — :class:`StateDigest`, cheap
  deterministic structural digests of the four ClosureX state
  dimensions (heap chunk map, global sections, FD table, exit/setjmp
  context).
- :mod:`repro.integrity.oracle` — :class:`RestoreOracle`, captures a
  pristine post-boot baseline and compares digests after every restore
  (configurable cadence).
- :mod:`repro.integrity.shadow` — :class:`ShadowDiffer`, replays an
  input in a throwaway fresh VM and diffs coverage + outcome against
  the persistent run, catching divergence the digest can't attribute.
- :mod:`repro.integrity.ledger` — :class:`LeakLedger`, attribution,
  quarantine, and the JSONL diagnostic bundle.
- :mod:`repro.integrity.sentinel` — :class:`IntegritySentinel` +
  :class:`EscalationPolicy`: detect → targeted repair → VM respawn →
  forkserver fallback (via the existing supervised ladder).

All digest/compare/shadow work is charged to the virtual clock through
:class:`repro.sim_os.costs.CostModel` knobs, so enabling the sentinel
costs budget but never breaks determinism.

``python -m repro.integrity`` self-checks restoration over the ten
built-in targets.
"""

from repro.integrity.digest import (
    DIGEST_DIMENSIONS,
    StateDigest,
    compute_digest,
    digest_cost,
)
from repro.integrity.faults import IntegrityFault
from repro.integrity.ledger import LeakEvent, LeakLedger, QuarantinedInput
from repro.integrity.oracle import IntegrityVerdict, RestoreOracle
from repro.integrity.sentinel import (
    EscalationPolicy,
    IntegritySentinel,
    SentinelStats,
)
from repro.integrity.shadow import ShadowDiffer, ShadowObservation

__all__ = [
    "DIGEST_DIMENSIONS", "StateDigest", "compute_digest", "digest_cost",
    "IntegrityFault",
    "LeakEvent", "LeakLedger", "QuarantinedInput",
    "IntegrityVerdict", "RestoreOracle",
    "EscalationPolicy", "IntegritySentinel", "SentinelStats",
    "ShadowDiffer", "ShadowObservation",
]
