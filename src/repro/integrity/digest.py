"""StateDigest: cheap deterministic digests of the ClosureX dimensions.

A digest is *structural*, not semantic: it fingerprints exactly the
state a correct ClosureX restore guarantees — the live heap-chunk set
and allocator cursor, every writable global section's bytes, the open
FILE table (init-handle positions normalised to the rewound state),
and the harness's setjmp/argv context.  After a correct restore the
digest is bit-identical to the post-boot baseline; any difference names
the leaking dimension(s).

What a digest deliberately does **not** cover: heap chunk *contents*
(init-phase chunks are process-invariant in identity but their bytes
are legitimately target-writable) and the libc PRNG state (not part of
ClosureX's restore contract).  Pollution through those channels shows
up as behavioural divergence instead, which is the
:class:`~repro.integrity.shadow.ShadowDiffer`'s job to catch.

Digests are plain frozen dataclasses of CRC32 values, so they are
deterministic across processes and pickle round-trips — the property
test in ``tests/test_integrity.py`` pins this, and it is what lets a
resumed campaign compare digests captured before the checkpoint.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.vm.snapshot import READONLY_SECTIONS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.runtime.harness import ClosureXHarness
    from repro.sim_os.costs import CostModel

#: Digest fields in ClosureX dimension order (matches
#: ``repro.analysis.pollution.DIMENSIONS``: the exit dimension maps to
#: the harness's setjmp/argv/cursor context).
DIGEST_DIMENSIONS = ("heap", "file", "global", "exit")

_PACK_2Q = struct.Struct("<QQ").pack
_PACK_3Q = struct.Struct("<QQQ").pack


@dataclass(frozen=True)
class StateDigest:
    """CRC32 fingerprint of each ClosureX state dimension."""

    heap: int
    file: int
    global_: int
    exit: int
    #: Sizing facts recorded at capture time (drive the cost model and
    #: the diagnostic bundle; excluded from equality on purpose — two
    #: digests are compared field-by-dimension, and the cost of *this*
    #: capture is not state).
    heap_chunks: int = 0
    open_handles: int = 0
    section_bytes: int = 0

    def value(self, dimension: str) -> int:
        if dimension == "global":
            return self.global_
        return getattr(self, dimension)

    def diff(self, other: "StateDigest") -> tuple[str, ...]:
        """Dimensions whose fingerprints differ, in canonical order."""
        return tuple(
            d for d in DIGEST_DIMENSIONS if self.value(d) != other.value(d)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateDigest):
            return NotImplemented
        return all(self.value(d) == other.value(d) for d in DIGEST_DIMENSIONS)

    def __hash__(self) -> int:
        return hash(tuple(self.value(d) for d in DIGEST_DIMENSIONS))

    def describe(self) -> str:
        return " ".join(
            f"{d}={self.value(d):08x}" for d in DIGEST_DIMENSIONS
        )


def compute_digest(harness: "ClosureXHarness") -> StateDigest:
    """Digest the current state of a booted harness's VM."""
    vm = harness.vm
    if vm is None:
        raise RuntimeError("harness not booted")

    # Heap dimension: the live chunk set (identity + size), the chunk
    # map's idea of what is still leaked, and the allocator cursor.
    heap_crc = 0
    chunk_count = 0
    for base in sorted(vm.heap.live):
        region = vm.heap.live[base]
        heap_crc = zlib.crc32(_PACK_2Q(region.base, region.size), heap_crc)
        chunk_count += 1
    for chunk in sorted(harness.chunk_map.leaked(), key=lambda c: c.address):
        heap_crc = zlib.crc32(_PACK_2Q(chunk.address, chunk.size), heap_crc)
    heap_crc = zlib.crc32(
        _PACK_2Q(vm.memory.heap_segment.cursor, len(vm.heap.live)), heap_crc
    )

    # File dimension: every open handle's (handle, path, position),
    # with init-phase handles' positions normalised to the rewound
    # state so legitimate drift under rewind_init_handles=False never
    # reads as a leak.
    file_crc = 0
    handle_count = 0
    for handle in sorted(vm.fd_table.open_files):
        file = vm.fd_table.open_files[handle]
        record = harness.fd_tracker.get(handle)
        init = record.init if record is not None else False
        position = 0 if init else file.position
        file_crc = zlib.crc32(
            _PACK_3Q(handle, position, 1 if init else 0), file_crc
        )
        file_crc = zlib.crc32(file.path.encode("utf-8"), file_crc)
        handle_count += 1

    # Global dimension: every writable section's bytes — the relocated
    # closure_global_section plus any residual writable data, so a
    # store that escapes the GlobalPass's relocation (an analysis or
    # pass bug) is still caught.
    global_crc = 0
    section_bytes = 0
    for name in sorted(vm.sections):
        if name in READONLY_SECTIONS:
            continue
        data = vm.section_bytes(name)
        global_crc = zlib.crc32(name.encode("utf-8"), global_crc)
        global_crc = zlib.crc32(data, global_crc)
        section_bytes += len(data)

    # Exit dimension: the setjmp/longjmp return context — stack cursor
    # and frame count (a skipped rewind drifts these), plus the argv
    # block the harness longjmps back to.
    exit_crc = zlib.crc32(
        _PACK_3Q(
            vm.memory.stack_segment.cursor,
            vm.stack_region_count(),
            harness._argv,
        )
    )
    exit_crc = zlib.crc32(_PACK_2Q(harness._argc, 0), exit_crc)

    return StateDigest(
        heap=heap_crc,
        file=file_crc,
        global_=global_crc,
        exit=exit_crc,
        heap_chunks=chunk_count,
        open_handles=handle_count,
        section_bytes=section_bytes,
    )


def digest_cost(digest: StateDigest, costs: "CostModel") -> int:
    """Virtual-ns price of having computed *digest*."""
    return costs.state_digest_cost(
        digest.heap_chunks, digest.open_handles, digest.section_bytes
    )
