"""RestoreOracle: does post-restore state equal the pristine baseline?

The oracle captures one canonical :class:`StateDigest` right after the
harness boots and compares every later digest against it.  ClosureX's
correctness contract says the two must be bit-identical — restoration
returns the process to exactly its post-init state — so any differing
dimension is a restore leak, already attributed (heap / file / global /
exit) by construction.

Canonicalisation: the post-boot state is *almost* the post-restore
state — init may have left FILE positions advanced and the stack/heap
bump cursors past their rewind marks, which the first restore will
normalise.  ``capture_baseline`` therefore runs the file sweep and
cursor rewind once before digesting (semantically a no-op: no target
code has run), so the baseline is the fixed point restoration converges
to and the first check never false-positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.integrity.digest import StateDigest, compute_digest, digest_cost

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.runtime.harness import ClosureXHarness


@dataclass
class IntegrityVerdict:
    """Outcome of one post-restore integrity check."""

    clean: bool
    leaked_dimensions: tuple[str, ...]
    digest: StateDigest
    cost_ns: int

    def describe(self) -> str:
        if self.clean:
            return "clean"
        return "leak:" + ",".join(self.leaked_dimensions)


class RestoreOracle:
    """Compares post-restore digests against the pristine baseline."""

    def __init__(self) -> None:
        self.baseline: StateDigest | None = None
        self.checks = 0

    def capture_baseline(self, harness: "ClosureXHarness") -> int:
        """Canonicalise and digest the pristine post-boot state.

        Returns the virtual-ns cost of the capture (one repair-grade
        sweep plus one digest); the caller owns the accounting.
        """
        sweep_ns = harness.repair_dimensions(("file", "exit"))
        self.baseline = compute_digest(harness)
        self.checks = 0
        return sweep_ns + digest_cost(self.baseline, harness.costs)

    def check(self, harness: "ClosureXHarness") -> IntegrityVerdict:
        """Digest the current state and diff it against the baseline."""
        if self.baseline is None:
            raise RuntimeError("oracle has no baseline — capture one first")
        digest = compute_digest(harness)
        leaked = self.baseline.diff(digest)
        self.checks += 1
        return IntegrityVerdict(
            clean=not leaked,
            leaked_dimensions=leaked,
            digest=digest,
            cost_ns=digest_cost(digest, harness.costs),
        )
