"""Analysis CLI: ``python -m repro.analysis [opt] [options]``.

Bare invocation is the lint gate.  For every registered target this
runs, on both the raw module and the full ClosureX build:

- the structural verifier in strict-SSA mode, and
- the full lint rule set,

then prints a one-line pollution summary per target.  The process
exits non-zero if any target fails verification or produces an
error-severity diagnostic — warnings are reported but tolerated.  CI
runs this as the ``lint-targets`` job.

``python -m repro.analysis opt`` runs the validated optimizer
(:mod:`repro.analysis.opt`) over the ClosureX build of each target and
reports static and dynamic (seed-replayed) instruction counts, the
transforms applied, and every validation verdict.  ``--targets a,b``
restricts the set; ``--json`` emits a stable machine-readable report
(schema ``repro-opt-report/1``).  Exits non-zero if any transform was
rejected by translation validation.  CI runs this as the
``opt-validation`` job.
"""

from __future__ import annotations

import json
import sys

from repro.analysis.lint import Linter, Severity
from repro.analysis.pollution import PollutionAnalyzer
from repro.ir.verifier import VerificationError, verify_module
from repro.targets import all_targets, get_target


def check_module(label: str, module) -> tuple[int, int]:
    """Verify + lint one module; returns (errors, warnings)."""
    errors = 0
    warnings = 0
    try:
        verify_module(module, strict_ssa=True)
    except VerificationError as failure:
        for message in failure.errors:
            print(f"  error: [verifier] {label}: {message}")
        errors += len(failure.errors)
    linter = Linter(module)
    for diagnostic in linter.run():
        print(f"  {diagnostic.describe()}  [{label}]")
        if diagnostic.severity is Severity.ERROR:
            errors += 1
        else:
            warnings += 1
    return errors, warnings


def lint_main() -> int:
    total_errors = 0
    total_warnings = 0
    for spec in all_targets():
        raw = spec.compile()
        report = PollutionAnalyzer(
            raw, extra_allocators=spec.extra_allocators
        ).run()
        clean = ",".join(report.clean_dimensions()) or "-"
        print(f"{spec.name}: clean=[{clean}] "
              f"modified_globals={len(report.modified_globals)}"
              f"{'' if report.trusted_globals else ' (untrusted)'}")
        for label, module in (
            ("raw", raw),
            ("closurex", spec.build_closurex()),
        ):
            errors, warnings = check_module(f"{spec.name}/{label}", module)
            total_errors += errors
            total_warnings += warnings
    print(f"\nlint-targets: {total_errors} error(s), "
          f"{total_warnings} warning(s) across {len(all_targets())} targets")
    return 1 if total_errors else 0


# ---------------------------------------------------------------------------
# opt subcommand
# ---------------------------------------------------------------------------


def _dynamic_instructions(module, seeds) -> int:
    from repro.analysis.opt import observe

    return sum(observe(module, seed).instructions for seed in seeds)


def optimize_target(spec) -> dict:
    """Optimize one target's ClosureX build; returns the report dict."""
    from repro.analysis.opt import optimize_module

    seeds = tuple(spec.seeds)
    baseline = spec.build_closurex()
    module = spec.build_closurex()
    report = optimize_module(
        module, seeds=seeds, extra_allocators=spec.extra_allocators
    )
    dynamic_before = _dynamic_instructions(baseline, seeds)
    dynamic_after = _dynamic_instructions(module, seeds)
    entry = report.to_dict()
    entry["target"] = spec.name
    entry["dynamic_instructions_before"] = dynamic_before
    entry["dynamic_instructions_after"] = dynamic_after
    entry["dynamic_reduction_percent"] = round(
        100.0 * (dynamic_before - dynamic_after) / dynamic_before, 2
    ) if dynamic_before else 0.0
    return entry


def _print_opt_entry(entry: dict) -> None:
    print(f"{entry['target']}: "
          f"static {entry['instructions_before']} -> "
          f"{entry['instructions_after']} "
          f"(-{entry['instructions_removed']}), "
          f"dynamic {entry['dynamic_instructions_before']} -> "
          f"{entry['dynamic_instructions_after']} "
          f"(-{entry['dynamic_reduction_percent']}%), "
          f"{entry['rounds']} round(s), {entry['replays']} replay(s)")
    for outcome in entry["transforms"]:
        if outcome["verdict"] == "no-change":
            continue
        details = ", ".join(f"{k}={v}" for k, v in
                            outcome["details"].items()) or "-"
        line = (f"  round {outcome['round']} {outcome['transform']}: "
                f"{outcome['verdict']} [{details}]")
        print(line)
        for error in outcome["errors"]:
            print(f"    {error}")


def opt_main(argv: list[str]) -> int:
    names = [spec.name for spec in all_targets()]
    as_json = False
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--json":
            as_json = True
        elif arg == "--targets":
            i += 1
            if i >= len(argv):
                print("error: --targets needs a comma-separated list",
                      file=sys.stderr)
                return 2
            names = [n for n in argv[i].split(",") if n]
        elif arg.startswith("--targets="):
            names = [n for n in arg.split("=", 1)[1].split(",") if n]
        else:
            print(f"error: unknown argument {arg!r}", file=sys.stderr)
            return 2
        i += 1
    entries = []
    for name in names:
        spec = get_target(name)
        entry = optimize_target(spec)
        entries.append(entry)
        if not as_json:
            _print_opt_entry(entry)
    rejected = sum(entry["rejected"] for entry in entries)
    if as_json:
        print(json.dumps({
            "schema": "repro-opt-report/1",
            "targets": entries,
            "rejected": rejected,
        }, indent=2, sort_keys=True))
    else:
        applied = sum(entry["applied"] for entry in entries)
        print(f"\nopt-validation: {applied} transform(s) applied, "
              f"{rejected} rejected across {len(entries)} target(s)")
    return 1 if rejected else 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "opt":
        return opt_main(argv[1:])
    if argv:
        print(f"error: unknown subcommand {argv[0]!r} "
              f"(expected 'opt' or no arguments)", file=sys.stderr)
        return 2
    return lint_main()


if __name__ == "__main__":
    sys.exit(main())
