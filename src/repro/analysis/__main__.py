"""Lint gate over the built-in targets: ``python -m repro.analysis``.

For every registered target this runs, on both the raw module and the
full ClosureX build:

- the structural verifier in strict-SSA mode, and
- the full lint rule set,

then prints a one-line pollution summary per target.  The process
exits non-zero if any target fails verification or produces an
error-severity diagnostic — warnings are reported but tolerated.  CI
runs this as the ``lint-targets`` job.
"""

from __future__ import annotations

import sys

from repro.analysis.lint import Linter, Severity
from repro.analysis.pollution import PollutionAnalyzer
from repro.ir.verifier import VerificationError, verify_module
from repro.targets import all_targets


def check_module(label: str, module) -> tuple[int, int]:
    """Verify + lint one module; returns (errors, warnings)."""
    errors = 0
    warnings = 0
    try:
        verify_module(module, strict_ssa=True)
    except VerificationError as failure:
        for message in failure.errors:
            print(f"  error: [verifier] {label}: {message}")
        errors += len(failure.errors)
    linter = Linter(module)
    for diagnostic in linter.run():
        print(f"  {diagnostic.describe()}  [{label}]")
        if diagnostic.severity is Severity.ERROR:
            errors += 1
        else:
            warnings += 1
    return errors, warnings


def main() -> int:
    total_errors = 0
    total_warnings = 0
    for spec in all_targets():
        raw = spec.compile()
        report = PollutionAnalyzer(
            raw, extra_allocators=spec.extra_allocators
        ).run()
        clean = ",".join(report.clean_dimensions()) or "-"
        print(f"{spec.name}: clean=[{clean}] "
              f"modified_globals={len(report.modified_globals)}"
              f"{'' if report.trusted_globals else ' (untrusted)'}")
        for label, module in (
            ("raw", raw),
            ("closurex", spec.build_closurex()),
        ):
            errors, warnings = check_module(f"{spec.name}/{label}", module)
            total_errors += errors
            total_warnings += warnings
    print(f"\nlint-targets: {total_errors} error(s), "
          f"{total_warnings} warning(s) across {len(all_targets())} targets")
    return 1 if total_errors else 0


if __name__ == "__main__":
    sys.exit(main())
