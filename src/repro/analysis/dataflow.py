"""Generic worklist dataflow framework over MiniIR CFGs.

The framework solves forward or backward *may* problems over a
powerset lattice (join = set union), which covers the analyses this
repo needs: liveness (backward) and reaching definitions (forward).
Block order comes from the cached reverse post-order in
:mod:`repro.ir.cfg`, so a solve converges in few sweeps on reducible
CFGs and reuses the CFG cache shared with the verifier and linter.

Alongside the solver live two structural helpers that the pollution
analyzer and the linter share: :func:`def_use_chains` (intra-function
def→use edges, derived from the IR's use lists) and
:func:`alloca_slots` (the alloca-form "variables" unoptimised MiniC
codegen produces).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.ir import cfg
from repro.ir.instructions import Alloca, Instruction, Load, Phi, Store
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Argument, Value


@dataclass
class DataflowResult:
    """Per-block in/out sets of one dataflow solve."""

    analysis: str
    block_in: dict[BasicBlock, frozenset] = field(default_factory=dict)
    block_out: dict[BasicBlock, frozenset] = field(default_factory=dict)
    iterations: int = 0

    def at_entry(self, block: BasicBlock) -> frozenset:
        return self.block_in.get(block, frozenset())

    def at_exit(self, block: BasicBlock) -> frozenset:
        return self.block_out.get(block, frozenset())


class DataflowAnalysis:
    """A forward or backward union-lattice dataflow problem.

    Subclasses define :attr:`direction` ("forward" or "backward"),
    :meth:`boundary` (the set at the boundary block), and
    :meth:`transfer` (the block transfer function).  :meth:`run`
    iterates to a fixpoint with a worklist seeded in reverse post-order
    (or its reverse, for backward problems).
    """

    name = "<dataflow>"
    direction = "forward"

    def boundary(self, function: Function) -> frozenset:
        return frozenset()

    def transfer(self, block: BasicBlock, value: frozenset) -> frozenset:
        raise NotImplementedError

    def run(self, function: Function) -> DataflowResult:
        result = DataflowResult(self.name)
        if function.is_declaration:
            return result
        forward = self.direction == "forward"
        order = cfg.topological_order(function)
        if not forward:
            order = list(reversed(order))
        preds = cfg.predecessors(function)

        def inputs(block: BasicBlock) -> list[BasicBlock]:
            return preds[block] if forward else block.successors()

        def outputs(block: BasicBlock) -> list[BasicBlock]:
            return block.successors() if forward else preds[block]

        before = result.block_in if forward else result.block_out
        after = result.block_out if forward else result.block_in
        for block in order:
            before[block] = frozenset()
            after[block] = frozenset()
        if order:
            before[order[0]] = self.boundary(function)

        queued = {b: True for b in order}
        worklist = deque(order)
        while worklist:
            block = worklist.popleft()
            queued[block] = False
            result.iterations += 1
            merged = before[block]
            for other in inputs(block):
                if other in after:  # unreachable inputs stay out
                    merged |= after[other]
            before[block] = merged
            new_out = self.transfer(block, merged)
            if new_out != after[block]:
                after[block] = new_out
                for succ in outputs(block):
                    if succ in queued and not queued[succ]:
                        queued[succ] = True
                        worklist.append(succ)
        return result


# ---------------------------------------------------------------------------
# liveness
# ---------------------------------------------------------------------------


class Liveness(DataflowAnalysis):
    """Backward may-analysis: which values are live at block boundaries.

    A value (instruction result or argument) is live if some path to a
    use does not pass its (re)definition — in SSA there is exactly one
    definition, so live-out is simply ∪ live-in of successors, with phi
    uses attributed to the incoming edge (the value a phi selects from
    predecessor P is live at the end of P, not at the start of the phi
    block).
    """

    name = "liveness"
    direction = "backward"

    def transfer(self, block: BasicBlock, live_out: frozenset) -> frozenset:
        live = set(live_out)
        # Phi uses belong to the incoming edges, handled below; phi
        # *results* die here like any other definition.
        for inst in reversed(block.instructions):
            live.discard(inst)
            if isinstance(inst, Phi):
                continue
            for op in inst.operands:
                if isinstance(op, (Instruction, Argument)):
                    live.add(op)
        # Values our successors' phis select from *this* block are live
        # at the end of this block.
        for succ in block.successors():
            for inst in succ.instructions:
                if not isinstance(inst, Phi):
                    break
                for value, pred in inst.incoming():
                    if pred is block and isinstance(value, (Instruction, Argument)):
                        live.add(value)
        return frozenset(live)


def live_values(function: Function) -> DataflowResult:
    """Solve liveness for *function*."""
    return Liveness().run(function)


# ---------------------------------------------------------------------------
# reaching definitions (over alloca slots, the -O0 "variables")
# ---------------------------------------------------------------------------


def alloca_slots(function: Function) -> list[Alloca]:
    """The function's alloca-form variables, in definition order."""
    return [inst for inst in function.instructions() if isinstance(inst, Alloca)]


def _store_slot(inst: Instruction) -> Alloca | None:
    if isinstance(inst, Store) and isinstance(inst.ptr, Alloca):
        return inst.ptr
    return None


class ReachingDefinitions(DataflowAnalysis):
    """Forward may-analysis: which stores to alloca slots reach a point.

    Definitions are ``store`` instructions whose address operand is a
    direct alloca; a store to a slot kills every other store to the
    same slot.  Loads through anything other than a direct alloca are
    outside the domain (the pointer-root analysis in
    :mod:`repro.analysis.callgraph` handles those conservatively).
    """

    name = "reaching-definitions"
    direction = "forward"

    def transfer(self, block: BasicBlock, reach_in: frozenset) -> frozenset:
        reaching = set(reach_in)
        for inst in block.instructions:
            slot = _store_slot(inst)
            if slot is not None:
                reaching = {d for d in reaching if _store_slot(d) is not slot}
                reaching.add(inst)
        return frozenset(reaching)


def reaching_stores(function: Function) -> DataflowResult:
    """Solve reaching definitions for *function*."""
    return ReachingDefinitions().run(function)


def escaping_slots(function: Function) -> set[int]:
    """``id()``s of allocas whose address is used beyond direct
    load/store — passed to a call, GEP'd, stored *as a value* — so
    their contents can be observed through an alias the reaching-defs
    domain does not model."""
    escaped: set[int] = set()
    for inst in function.instructions():
        if not isinstance(inst, Alloca):
            continue
        for use in inst.uses:
            user = use.user
            if isinstance(user, Store) and use.index == 1:
                continue
            if isinstance(user, Load) and use.index == 0:
                continue
            escaped.add(id(inst))
            break
    return escaped


def dead_slot_stores(function: Function) -> list[Store]:
    """Stores to non-escaping alloca slots that no load can observe.

    A store is dead when it is absent from every load's may-reach set:
    "may reach no load" implies "observed by no load".  Escaping slots
    are excluded entirely — an aliased pointer could read them outside
    the reaching-definitions domain.  Shared by the dead-store-
    elimination transform in :mod:`repro.analysis.opt` and the linter's
    ``dead-store`` rule, so the two can never disagree.
    """
    if function.is_declaration:
        return []
    escaped = escaping_slots(function)
    solution = reaching_stores(function)
    observed: set[int] = set()
    for inst in function.instructions():
        if isinstance(inst, Load) and isinstance(inst.ptr, Alloca):
            for store in stores_reaching(inst, solution):
                observed.add(id(store))
    dead: list[Store] = []
    for inst in function.instructions():
        if (isinstance(inst, Store) and isinstance(inst.ptr, Alloca)
                and id(inst.ptr) not in escaped
                and id(inst) not in observed):
            dead.append(inst)
    return dead


def stores_reaching(load: Load, solution: DataflowResult) -> set[Store]:
    """The store instructions that may define the value *load* reads.

    Only meaningful for loads whose address is a direct alloca; other
    loads return the empty set (callers must treat that as "unknown").
    """
    slot = load.ptr
    if not isinstance(slot, Alloca) or load.parent is None:
        return set()
    block = load.parent
    reaching = set(solution.at_entry(block))
    for inst in block.instructions:
        if inst is load:
            break
        maybe_slot = _store_slot(inst)
        if maybe_slot is not None:
            reaching = {d for d in reaching if _store_slot(d) is not maybe_slot}
            reaching.add(inst)
    return {d for d in reaching if _store_slot(d) is slot}  # type: ignore[misc]


# ---------------------------------------------------------------------------
# def-use chains
# ---------------------------------------------------------------------------


def def_use_chains(function: Function) -> dict[Instruction, list[tuple[Instruction, int]]]:
    """Map every instruction to its in-function uses ``(user, operand_index)``.

    Derived from the IR's def-use edges (:class:`repro.ir.values.Use`),
    restricted to users that are instructions of *function*.
    """
    chains: dict[Instruction, list[tuple[Instruction, int]]] = {}
    members = {id(inst) for inst in function.instructions()}
    for inst in function.instructions():
        uses: list[tuple[Instruction, int]] = []
        for use in inst.uses:
            user = use.user
            if isinstance(user, Instruction) and id(user) in members:
                uses.append((user, use.index))
        chains[inst] = uses
    return chains


def unused_definitions(function: Function) -> list[Instruction]:
    """Non-void instructions whose result is never used (dead defs)."""
    dead: list[Instruction] = []
    for inst in function.instructions():
        if not inst.type.is_void and inst.num_uses == 0:
            dead.append(inst)
    return dead
