"""Diagnostic linter for MiniIR targets.

Where the verifier answers "is this module structurally valid?", the
linter answers "is this module *suspicious*?" — the class of smells
that are legal IR but usually indicate a broken target or a buggy
pass.  Diagnostics are structured :class:`Diagnostic` records with a
severity, so CI can fail on errors while tolerating warnings, and
``describe()`` renders them for humans.

Rules:

``dead-block`` (warning)
    A block unreachable from the entry block.
``unused-def`` (warning)
    A non-void, non-call instruction whose result is never used.
``use-before-def`` (error)
    A value whose definition does not dominate a use (the strict SSA
    invariant, shared with the verifier's ``strict_ssa`` mode).
``undeclared-global`` (error)
    A store through a global that is not registered in the module's
    symbol table — it would never be snapshotted or relocated.
``unknown-extern`` (error)
    A call to a declared-only function the VM cannot link.
``ignored-result`` (error)
    A call to an allocation-returning extern (``malloc`` family,
    ``fopen``) whose result is dropped: the allocated state leaks
    outside any tracked root.
``dead-store`` (warning)
    A store to a non-escaping stack slot that no load can observe
    (reaching-definitions proof, shared with the optimizer's
    dead-store elimination so linter and optimizer never disagree).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.callgraph import known_extern_names
from repro.analysis.dataflow import dead_slot_stores
from repro.ir import cfg
from repro.ir.instructions import Call, Cast, GetElementPtr, Instruction, Store
from repro.ir.module import Function, Module
from repro.ir.values import GlobalVariable
from repro.ir.verifier import Verifier

#: Externs whose return value *is* the allocated state: dropping it
#: leaks a heap chunk or a FILE handle.
ALLOCATING_EXTERNS = frozenset({"malloc", "calloc", "realloc", "fopen"})


class Severity(enum.Enum):
    """Diagnostic severity levels the lint driver sorts and gates on."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding."""

    severity: Severity
    rule: str
    function: str
    message: str
    block: str | None = None

    def describe(self) -> str:
        where = f"@{self.function}"
        if self.block is not None:
            where += f":%{self.block}"
        return f"{self.severity.value}: [{self.rule}] {where}: {self.message}"


class Linter:
    """Run every lint rule over a module's defined functions."""

    def __init__(self, module: Module, known_externs: frozenset[str] | None = None):
        self.module = module
        self.known_externs = (
            known_externs if known_externs is not None else known_extern_names()
        )
        self.diagnostics: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        self.diagnostics = []
        for function in self.module.defined_functions():
            self._lint_function(function)
        return self.diagnostics

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def report(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    # -- rules ----------------------------------------------------------

    def _lint_function(self, function: Function) -> None:
        self._rule_dead_blocks(function)
        self._rule_unused_defs(function)
        self._rule_use_before_def(function)
        self._rule_dead_stores(function)
        for inst in function.instructions():
            if isinstance(inst, Store):
                self._rule_undeclared_global(function, inst)
            elif isinstance(inst, Call):
                self._rule_calls(function, inst)

    def _rule_dead_blocks(self, function: Function) -> None:
        reachable = cfg.reachable_blocks(function)
        for block in function.blocks:
            if block not in reachable:
                self.report(Diagnostic(
                    Severity.WARNING, "dead-block", function.name,
                    "block is unreachable from the entry block",
                    block=block.name,
                ))

    def _rule_unused_defs(self, function: Function) -> None:
        for inst in function.instructions():
            if inst.type.is_void or inst.num_uses:
                continue
            if isinstance(inst, Call):
                continue  # calls have effects; ignored results get their own rule
            self.report(Diagnostic(
                Severity.WARNING, "unused-def", function.name,
                f"result of '{inst}' is never used",
                block=inst.parent.name if inst.parent else None,
            ))

    def _rule_use_before_def(self, function: Function) -> None:
        # The strict-SSA dominance check is shared with the verifier so
        # the two can never disagree about what "use before def" means.
        checker = Verifier(self.module, strict_ssa=True)
        checker._check_dominance(function)
        for message in checker.errors:
            self.report(Diagnostic(
                Severity.ERROR, "use-before-def", function.name, message,
            ))

    def _rule_dead_stores(self, function: Function) -> None:
        for store in dead_slot_stores(function):
            slot = store.ptr
            self.report(Diagnostic(
                Severity.WARNING, "dead-store", function.name,
                f"store to slot '{slot.ref()}' is never observed by a load",
                block=store.parent.name if store.parent else None,
            ))

    def _rule_undeclared_global(self, function: Function, store: Store) -> None:
        target = store.ptr
        while isinstance(target, (GetElementPtr, Cast)):
            target = target.base if isinstance(target, GetElementPtr) else target.value
        if not isinstance(target, GlobalVariable):
            return
        if self.module.globals.get(target.name) is not target:
            self.report(Diagnostic(
                Severity.ERROR, "undeclared-global", function.name,
                f"store to @{target.name}, which is not registered in the "
                f"module symbol table",
                block=store.parent.name if store.parent else None,
            ))

    def _rule_calls(self, function: Function, call: Call) -> None:
        callee = call.callee
        if not isinstance(callee, Function) or not callee.is_declaration:
            return
        block = call.parent.name if call.parent else None
        if callee.name not in self.known_externs:
            self.report(Diagnostic(
                Severity.ERROR, "unknown-extern", function.name,
                f"call to extern @{callee.name}, which the VM cannot link",
                block=block,
            ))
        if callee.name in ALLOCATING_EXTERNS and call.num_uses == 0:
            self.report(Diagnostic(
                Severity.ERROR, "ignored-result", function.name,
                f"result of @{callee.name} call is dropped: the allocated "
                f"state escapes all tracked roots",
                block=block,
            ))


def lint_module(module: Module,
                known_externs: frozenset[str] | None = None) -> list[Diagnostic]:
    """Run the linter; returns the (possibly empty) diagnostic list."""
    return Linter(module, known_externs).run()
