"""The optimizer's transform suite over MiniIR.

Each transform is driven by an analysis from :mod:`repro.analysis`:

- :class:`SimplifyCFG` — reachability + predecessor maps from
  :mod:`repro.ir.cfg`: drops unreachable blocks, folds degenerate
  conditional branches, threads jumps through empty blocks, and merges
  straight-line block pairs.
- :class:`SCCP` — sparse conditional constant propagation, folding
  with the VM's *exact* arithmetic (wrap-around, shift-overflow,
  C-truncating signed division) so a folded constant can never differ
  from what the interpreter would have computed.
- :class:`SimplifyInstructions` — algebraic identities and trivial
  phi/select elimination (the copy-propagation step: replaced values
  are rewritten through ``replace_all_uses_with``).
- :class:`RedundantLoadElimination` — forward availability of loaded
  values across straight-line block chains, with clobbering decided by
  the call-graph mod/ref summaries of
  :mod:`repro.analysis.callgraph`.
- :class:`DeadStoreElimination` — erases the stores
  :func:`repro.analysis.dataflow.dead_slot_stores` proves unobservable
  (the same helper behind the linter's ``dead-store`` rule).
- :class:`DeadCodeElimination` — mark-and-sweep over def-use edges,
  keeping everything with an effect the VM could observe (including
  potentially-trapping instructions).

A standing constraint shapes several decisions here: a crash's
identity is ``(trap kind, function name, block name)``, so any
transform that could move a *potentially trapping* instruction into a
differently-named block would change crash digests.  Block merging
therefore only fuses provably non-trapping instruction sequences, and
trapping instructions (division by a non-constant, loads through
arbitrary pointers) are never deleted or relocated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.callgraph import (
    FILE_HANDLE,
    HEAP,
    HEAP_EXTERNS,
    UNKNOWN,
    WRITES_ARG0,
    Root,
    RootTracer,
    global_root,
    known_extern_names,
    summarise_module,
)
from repro.analysis.dataflow import dead_slot_stores
from repro.ir import cfg
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import IntType
from repro.ir.values import ConstantInt, ConstantNull, UndefValue, Value
from repro.passes.coverage import COV_GUARD

#: Externs that never write target-visible memory: pure readers
#: (``memcmp``/``strlen``…), output/PRNG/clock natives, process-exit
#: natives, the FILE API minus ``fread`` (file state lives outside the
#: VM address space), fresh-memory allocators, and the ClosureX
#: runtime hooks.  A call to one of these does not clobber available
#: loads.
NO_WRITE_EXTERNS = frozenset({
    COV_GUARD,
    "memcmp", "strlen", "strcmp", "strncmp", "strchr", "atoi",
    "puts", "print_int", "rand", "srand", "time",
    "exit", "abort", "closurex_exit_hook",
    "fopen", "fclose", "fwrite", "fseek", "ftell", "fgetc", "feof",
    "rewind",
    "malloc", "calloc", "closurex_malloc", "closurex_calloc",
    "closurex_fopen_hook", "closurex_fclose_hook",
})

#: Externs that release or move heap memory: they clobber every
#: available load rooted in the heap.
HEAP_CLOBBER_EXTERNS = frozenset({
    "free", "realloc", "closurex_free", "closurex_realloc",
})


@dataclass
class TransformResult:
    """Outcome of one transform over one module."""

    transform: str
    changed: bool = False
    details: dict[str, int] = field(default_factory=dict)

    def note(self, key: str, amount: int = 1) -> None:
        self.details[key] = self.details.get(key, 0) + amount
        self.changed = True


class OptContext:
    """Shared per-round analysis state.

    Holds the interprocedural call-graph summaries (name-keyed, so they
    survive a checkpoint rollback that replaces function objects) and
    the extern classification extended with the target's custom
    allocators.
    """

    def __init__(self, module: Module,
                 extra_allocators: dict[str, str] | None = None):
        self.module = module
        self.extra_allocators = dict(extra_allocators or {})
        self.heap_externs = HEAP_EXTERNS | frozenset(self.extra_allocators)
        self.graph, self.summaries = summarise_module(
            module, extra_allocators=self.extra_allocators
        )
        self.known_externs = known_extern_names() | frozenset(self.extra_allocators)
        self.no_write_externs = NO_WRITE_EXTERNS | frozenset(
            name for name, semantic in self.extra_allocators.items()
            if semantic in ("malloc", "calloc")
        )
        self.heap_clobber_externs = HEAP_CLOBBER_EXTERNS | frozenset(
            name for name, semantic in self.extra_allocators.items()
            if semantic in ("free", "realloc")
        )


class Transform:
    """A module-level rewrite driven by :class:`OptContext` analyses."""

    name = "<transform>"

    def run(self, module: Module, ctx: OptContext) -> TransformResult:
        result = TransformResult(self.name)
        for function in list(module.defined_functions()):
            self.run_on_function(function, ctx, result)
        return result

    def run_on_function(self, function: Function, ctx: OptContext,
                        result: TransformResult) -> None:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# constant folding with the VM's exact semantics
# ---------------------------------------------------------------------------


def fold_binop(op: str, type_: IntType, lhs: int, rhs: int) -> int | None:
    """Fold a binary op exactly as ``VM._exec_binop`` would.

    Returns ``None`` when the VM would trap (division/remainder by
    zero): the instruction must then stay in place so the trap — part
    of the observable crash identity — still fires at runtime.
    """
    if op == "add":
        return type_.wrap(lhs + rhs)
    if op == "sub":
        return type_.wrap(lhs - rhs)
    if op == "mul":
        return type_.wrap(lhs * rhs)
    if op == "and":
        return lhs & rhs
    if op == "or":
        return lhs | rhs
    if op == "xor":
        return lhs ^ rhs
    if op == "shl":
        return type_.wrap(lhs << rhs) if rhs < type_.bits else 0
    if op == "lshr":
        return (lhs >> rhs) if rhs < type_.bits else 0
    if op == "ashr":
        return type_.wrap(type_.to_signed(lhs) >> min(rhs, type_.bits - 1))
    if rhs == 0:
        return None  # the VM traps; never fold a trap away
    if op in ("sdiv", "srem"):
        a, b = type_.to_signed(lhs), type_.to_signed(rhs)
        if op == "sdiv":
            quotient = abs(a) // abs(b)
            return type_.wrap(quotient if (a < 0) == (b < 0) else -quotient)
        remainder = abs(a) % abs(b)
        return type_.wrap(remainder if a >= 0 else -remainder)
    if op == "udiv":
        return lhs // rhs
    return lhs % rhs  # urem


def fold_icmp(predicate: str, type_: IntType, lhs: int, rhs: int) -> int:
    """Fold an integer comparison exactly as ``VM._exec_icmp`` would."""
    if predicate in ("slt", "sle", "sgt", "sge"):
        lhs, rhs = type_.to_signed(lhs), type_.to_signed(rhs)
    if predicate == "eq":
        return 1 if lhs == rhs else 0
    if predicate == "ne":
        return 1 if lhs != rhs else 0
    if predicate in ("slt", "ult"):
        return 1 if lhs < rhs else 0
    if predicate in ("sle", "ule"):
        return 1 if lhs <= rhs else 0
    if predicate in ("sgt", "ugt"):
        return 1 if lhs > rhs else 0
    return 1 if lhs >= rhs else 0


def fold_cast(op: str, from_type, to_type, value: int) -> int | None:
    """Fold the integer-valued casts; ``None`` for the pointer-typed
    results we cannot represent as a constant."""
    if op in ("trunc", "zext", "ptrtoint"):
        return to_type.wrap(value)
    if op == "sext":
        return to_type.wrap(from_type.to_signed(value))
    return None  # bitcast / inttoptr produce pointers


def _const_operand(value: Value) -> int | None:
    """The VM's integer evaluation of a constant operand, or ``None``.

    Global and function addresses are assigned at load time and so are
    *not* compile-time constants here.
    """
    if isinstance(value, ConstantInt):
        return value.value
    if isinstance(value, ConstantNull):
        return 0
    if isinstance(value, UndefValue):
        return 0  # the VM reads undef as zero, deterministically
    return None


def _same_value(a: Value, b: Value) -> bool:
    if a is b:
        return True
    if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
        return a.type == b.type and a.value == b.value
    if isinstance(a, ConstantNull) and isinstance(b, ConstantNull):
        return a.type == b.type
    return False


# ---------------------------------------------------------------------------
# sparse conditional constant propagation
# ---------------------------------------------------------------------------

_TOP = "top"
_BOTTOM = "bottom"


class SCCP(Transform):
    """Sparse conditional constant propagation with branch folding.

    The classic two-worklist algorithm: CFG edges become executable
    lazily, values sit on a TOP → constant → BOTTOM lattice, and phi
    meets only consider executable incoming edges — so constants
    propagate through branches that are themselves decided by
    constants.  Afterwards, constant-valued instructions are rewritten
    via ``replace_all_uses_with`` and constant-condition terminators
    are folded to unconditional branches (unreachable successors lose
    their phi arms; the dead blocks themselves are SimplifyCFG's job).
    """

    name = "sccp"

    def run_on_function(self, function: Function, ctx: OptContext,
                        result: TransformResult) -> None:
        if function.is_declaration:
            return
        lattice: dict[int, object] = {}
        exec_edges: set[tuple[int | None, int]] = set()
        exec_blocks: dict[int, BasicBlock] = {}
        flow: list[tuple[BasicBlock | None, BasicBlock]] = [
            (None, function.entry_block)
        ]
        ssa: list[Instruction] = []

        def value_of(value: Value) -> object:
            const = _const_operand(value)
            if const is not None:
                return const
            if isinstance(value, Instruction):
                return lattice.get(id(value), _TOP)
            return _BOTTOM  # arguments, globals, functions

        def lower(inst: Instruction, state: object) -> None:
            old = lattice.get(id(inst), _TOP)
            if old == state:
                return
            # Lattice only descends: TOP -> const -> BOTTOM.
            if old is not _TOP and state is not _BOTTOM:
                state = _BOTTOM if old != state else state
            lattice[id(inst)] = state
            for use in inst.uses:
                user = use.user
                if isinstance(user, Instruction) and user.parent is not None:
                    if id(user.parent) in exec_blocks:
                        ssa.append(user)

        def evaluate(inst: Instruction) -> None:
            if isinstance(inst, Phi):
                state: object = _TOP
                block = inst.parent
                for value, pred in inst.incoming():
                    if (id(pred), id(block)) not in exec_edges:
                        continue
                    incoming = value_of(value)
                    if incoming is _BOTTOM:
                        state = _BOTTOM
                        break
                    if incoming is _TOP:
                        continue
                    if state is _TOP or state == incoming:
                        state = incoming
                    else:
                        state = _BOTTOM
                        break
                lower(inst, state)
                return
            if isinstance(inst, (CondBr, Switch)):
                self._evaluate_terminator(inst, value_of, flow, exec_edges)
                return
            if isinstance(inst, Br):
                edge = (id(inst.parent), id(inst.target))
                if edge not in exec_edges:
                    flow.append((inst.parent, inst.target))
                return
            if isinstance(inst, BinOp):
                lhs, rhs = value_of(inst.lhs), value_of(inst.rhs)
                if _BOTTOM in (lhs, rhs):
                    lower(inst, _BOTTOM)
                elif _TOP not in (lhs, rhs):
                    assert isinstance(inst.type, IntType)
                    folded = fold_binop(inst.op, inst.type, lhs, rhs)  # type: ignore[arg-type]
                    lower(inst, _BOTTOM if folded is None else folded)
                return
            if isinstance(inst, ICmp):
                lhs, rhs = value_of(inst.lhs), value_of(inst.rhs)
                if _BOTTOM in (lhs, rhs):
                    lower(inst, _BOTTOM)
                elif _TOP not in (lhs, rhs):
                    operand_type = inst.lhs.type
                    if isinstance(operand_type, IntType):
                        lower(inst, fold_icmp(inst.predicate, operand_type,
                                              lhs, rhs))  # type: ignore[arg-type]
                    else:
                        lower(inst, fold_icmp(inst.predicate, None, lhs, rhs)
                              if inst.predicate in ("eq", "ne")
                              else _BOTTOM)
                return
            if isinstance(inst, Cast):
                value = value_of(inst.value)
                if value is _BOTTOM:
                    lower(inst, _BOTTOM)
                elif value is not _TOP:
                    folded = fold_cast(inst.op, inst.value.type, inst.type,
                                       value)  # type: ignore[arg-type]
                    lower(inst, _BOTTOM if folded is None else folded)
                return
            if isinstance(inst, Select):
                cond = value_of(inst.cond)
                if cond is _BOTTOM:
                    true_v = value_of(inst.if_true)
                    false_v = value_of(inst.if_false)
                    if (true_v is not _TOP and true_v is not _BOTTOM
                            and true_v == false_v):
                        lower(inst, true_v)
                    elif _BOTTOM in (true_v, false_v):
                        lower(inst, _BOTTOM)
                elif cond is not _TOP:
                    arm = inst.if_true if cond else inst.if_false
                    state = value_of(arm)
                    if state is not _TOP:
                        lower(inst, state)
                return
            if not inst.type.is_void:
                # loads, calls, allocas, GEPs: runtime values
                lower(inst, _BOTTOM)

        while flow or ssa:
            while ssa:
                evaluate(ssa.pop())
            if not flow:
                break
            pred, block = flow.pop()
            edge = (id(pred) if pred is not None else None, id(block))
            if edge in exec_edges:
                continue
            exec_edges.add(edge)
            first_visit = id(block) not in exec_blocks
            exec_blocks[id(block)] = block
            if first_visit:
                for inst in list(block.instructions):
                    evaluate(inst)
            else:
                # A new incoming edge only affects this block's phis.
                for inst in block.instructions:
                    if isinstance(inst, Phi):
                        evaluate(inst)
                    else:
                        break

        self._rewrite(function, lattice, exec_blocks, result)

    @staticmethod
    def _evaluate_terminator(inst, value_of, flow, exec_edges) -> None:
        block = inst.parent
        if isinstance(inst, CondBr):
            cond = value_of(inst.cond)
            if cond is _TOP:
                return
            if cond is _BOTTOM:
                targets = [inst.if_true, inst.if_false]
            else:
                targets = [inst.if_true if cond else inst.if_false]
        else:  # Switch
            value = value_of(inst.value)
            if value is _TOP:
                return
            if value is _BOTTOM:
                targets = inst.successors()
            else:
                targets = [inst.default]
                for const, case_block in inst.cases:
                    if const == value:
                        targets = [case_block]
                        break
        for target in targets:
            if (id(block), id(target)) not in exec_edges:
                flow.append((block, target))

    def _rewrite(self, function: Function, lattice, exec_blocks,
                 result: TransformResult) -> None:
        executable = [b for b in function.blocks if id(b) in exec_blocks]
        for block in executable:
            for inst in list(block.instructions):
                state = lattice.get(id(inst))
                if (state is None or state is _TOP or state is _BOTTOM
                        or inst.is_terminator or inst.type.is_void
                        or not isinstance(inst.type, IntType)
                        or inst.num_uses == 0):
                    continue
                inst.replace_all_uses_with(ConstantInt(inst.type, state))
                result.note("constants_propagated")
        # Terminators fold only after every constant is rewritten — a
        # branch condition may be defined in a later block than the
        # branch that uses it.
        for block in executable:
            self._fold_terminator(block, result)

    @staticmethod
    def _fold_terminator(block: BasicBlock, result: TransformResult) -> None:
        term = block.terminator
        taken: BasicBlock | None = None
        if isinstance(term, CondBr):
            cond = _const_operand(term.cond)
            if cond is None:
                return
            taken = term.if_true if cond else term.if_false
        elif isinstance(term, Switch):
            value = _const_operand(term.value)
            if value is None:
                return
            taken = term.default
            for const, case_block in term.cases:
                if const == value:
                    taken = case_block
                    break
        if taken is None:
            return
        dropped = [s for s in term.successors() if s is not taken]
        term.erase_from_parent()
        block.append(Br(taken))
        for succ in {id(s): s for s in dropped}.values():
            for inst in succ.instructions:
                if isinstance(inst, Phi):
                    inst.remove_incoming(block)
                else:
                    break
        result.note("branches_folded")


# ---------------------------------------------------------------------------
# instruction simplification (algebraic identities, copy propagation)
# ---------------------------------------------------------------------------


class SimplifyInstructions(Transform):
    """Peephole identities rewritten through ``replace_all_uses_with``.

    Covers the -O0 patterns MiniC codegen actually emits: arithmetic
    and bitwise identity elements, ``x - x`` / ``x ^ x`` / ``icmp x, x``
    self-operations, constant or degenerate selects, and trivial phis
    (all arms one value).  Replaced instructions become dead and are
    swept by :class:`DeadCodeElimination`.
    """

    name = "instsimplify"

    def run_on_function(self, function: Function, ctx: OptContext,
                        result: TransformResult) -> None:
        for block in function.blocks:
            for inst in list(block.instructions):
                if inst.num_uses == 0:
                    continue
                replacement = self._simplify(inst)
                if replacement is not None and replacement is not inst:
                    inst.replace_all_uses_with(replacement)
                    result.note("values_simplified")

    def _simplify(self, inst: Instruction) -> Value | None:
        if isinstance(inst, BinOp):
            return self._simplify_binop(inst)
        if isinstance(inst, ICmp):
            if _same_value(inst.lhs, inst.rhs):
                truth = inst.predicate in ("eq", "sle", "sge", "ule", "uge")
                return ConstantInt(inst.type, 1 if truth else 0)  # type: ignore[arg-type]
            return None
        if isinstance(inst, Select):
            if _same_value(inst.if_true, inst.if_false):
                return inst.if_true
            cond = _const_operand(inst.cond)
            if cond is not None:
                return inst.if_true if cond else inst.if_false
            return None
        if isinstance(inst, Phi):
            non_self = [v for v in inst.operands if v is not inst]
            if not non_self:
                return None
            first = non_self[0]
            if all(_same_value(first, v) for v in non_self[1:]):
                return first
            return None
        return None

    @staticmethod
    def _simplify_binop(inst: BinOp) -> Value | None:
        type_ = inst.type
        assert isinstance(type_, IntType)
        op = inst.op
        lhs, rhs = inst.lhs, inst.rhs
        lc, rc = _const_operand(lhs), _const_operand(rhs)
        zero = lambda: ConstantInt(type_, 0)
        if op == "add":
            if rc == 0:
                return lhs
            if lc == 0:
                return rhs
        elif op == "sub":
            if rc == 0:
                return lhs
            if _same_value(lhs, rhs):
                return zero()
        elif op == "mul":
            if rc == 1:
                return lhs
            if lc == 1:
                return rhs
            if rc == 0 or lc == 0:
                return zero()
        elif op == "and":
            if rc == 0 or lc == 0:
                return zero()
            if rc == type_.unsigned_max:
                return lhs
            if lc == type_.unsigned_max:
                return rhs
            if _same_value(lhs, rhs):
                return lhs
        elif op == "or":
            if rc == 0:
                return lhs
            if lc == 0:
                return rhs
            if _same_value(lhs, rhs):
                return lhs
        elif op == "xor":
            if rc == 0:
                return lhs
            if lc == 0:
                return rhs
            if _same_value(lhs, rhs):
                return zero()
        elif op in ("shl", "lshr", "ashr"):
            if rc == 0:
                return lhs
        elif op in ("udiv", "sdiv"):
            if rc == 1:
                return lhs
        elif op in ("urem", "srem"):
            if rc == 1:
                return zero()
        return None


# ---------------------------------------------------------------------------
# redundant load elimination
# ---------------------------------------------------------------------------


class RedundantLoadElimination(Transform):
    """Forward the value of a prior load/store at the same address.

    Availability is per SSA pointer value, propagated along
    straight-line edges (unique predecessor whose only successor is
    this block).  Clobbering is decided by pointer provenance
    (:class:`repro.analysis.callgraph.RootTracer`) crossed with the
    callee's mod/ref summary; a non-escaping alloca slot survives every
    call and every store through a different pointer, since no alias to
    it can exist.  Eliminating a load is safe for crash identity: the
    forwarding definition already accessed the same address without
    trapping, and no heap release happened in between (a release would
    have clobbered the entry).
    """

    name = "rle"

    def run_on_function(self, function: Function, ctx: OptContext,
                        result: TransformResult) -> None:
        if function.is_declaration:
            return
        tracer = RootTracer(function, ctx.summaries, ctx.heap_externs)
        preds = cfg.predecessors(function)
        order = cfg.topological_order(function)
        # block -> {id(ptr): (ptr, value available at ptr)}
        avail_out: dict[int, dict[int, tuple[Value, Value]]] = {}
        rewrites: list[tuple[Load, Value]] = []
        for block in order:
            block_preds = preds[block]
            # A unique predecessor's exit state holds on every one of
            # its outgoing edges, so it is valid at our entry; join
            # points and back edges (pred not yet visited) start empty.
            if (len(block_preds) == 1
                    and id(block_preds[0]) in avail_out):
                avail = dict(avail_out[id(block_preds[0])])
            else:
                avail = {}
            for inst in block.instructions:
                if isinstance(inst, Load):
                    entry = avail.get(id(inst.ptr))
                    if entry is not None:
                        rewrites.append((inst, entry[1]))
                    elif FILE_HANDLE not in tracer.trace(inst.ptr):
                        avail[id(inst.ptr)] = (inst.ptr, inst)
                elif isinstance(inst, Store):
                    self._clobber_store(avail, inst, tracer)
                    if FILE_HANDLE not in tracer.trace(inst.ptr):
                        avail[id(inst.ptr)] = (inst.ptr, inst.value)
                elif isinstance(inst, Call):
                    self._clobber_call(avail, inst, ctx, tracer)
            avail_out[id(block)] = avail
        for load, value in rewrites:
            load.replace_all_uses_with(value)
            load.erase_from_parent()
            result.note("loads_eliminated")

    @staticmethod
    def _roots_overlap(a: set[Root], b: set[Root]) -> bool:
        return UNKNOWN in a or UNKNOWN in b or bool(a & b)

    def _clobber_store(self, avail, store: Store, tracer: RootTracer) -> None:
        ptr = store.ptr
        if tracer.is_tracked_slot(ptr):
            avail.pop(id(ptr), None)  # only the slot itself can alias
            return
        roots = tracer.trace(ptr)
        for key, (entry_ptr, _value) in list(avail.items()):
            if entry_ptr is ptr:
                avail.pop(key)
            elif not tracer.is_tracked_slot(entry_ptr) and self._roots_overlap(
                    roots, tracer.trace(entry_ptr)):
                avail.pop(key)

    def _clobber_call(self, avail, call: Call, ctx: OptContext,
                      tracer: RootTracer) -> None:
        callee = call.callee
        if not isinstance(callee, Function):
            avail.clear()
            return
        if callee.is_declaration:
            name = callee.name
            if name in ctx.no_write_externs:
                return
            if name in ctx.heap_clobber_externs:
                self._clobber_roots(avail, {HEAP}, tracer)
                return
            if name in WRITES_ARG0 and call.args:
                self._clobber_roots(avail, tracer.trace(call.args[0]), tracer)
                return
            self._clobber_unknown(avail, tracer)
            return
        summary = ctx.summaries.get(callee.name)
        if summary is None or summary.stores_unknown or summary.calls_unknown_extern:
            self._clobber_unknown(avail, tracer)
            return
        roots: set[Root] = {global_root(g) for g in
                            summary.modified_globals | summary.escaped_globals}
        if summary.calls_heap:
            roots.add(HEAP)
        for index in summary.stores_params | summary.escapes_params:
            if index < len(call.args):
                roots |= tracer.trace(call.args[index])
        if roots:
            self._clobber_roots(avail, roots, tracer)

    def _clobber_roots(self, avail, roots: set[Root],
                       tracer: RootTracer) -> None:
        for key, (entry_ptr, _value) in list(avail.items()):
            if tracer.is_tracked_slot(entry_ptr):
                continue  # address never escapes: no callee can write it
            if self._roots_overlap(roots, tracer.trace(entry_ptr)):
                avail.pop(key)

    def _clobber_unknown(self, avail, tracer: RootTracer) -> None:
        for key, (entry_ptr, _value) in list(avail.items()):
            if not tracer.is_tracked_slot(entry_ptr):
                avail.pop(key)


# ---------------------------------------------------------------------------
# dead store / dead code elimination
# ---------------------------------------------------------------------------


class DeadStoreElimination(Transform):
    """Erase stores to non-escaping slots that no load can observe.

    The work is done by :func:`repro.analysis.dataflow.dead_slot_stores`
    (reaching definitions + escape analysis), shared verbatim with the
    linter's ``dead-store`` rule.
    """

    name = "dse"

    def run_on_function(self, function: Function, ctx: OptContext,
                        result: TransformResult) -> None:
        for store in dead_slot_stores(function):
            store.erase_from_parent()
            result.note("stores_eliminated")


def _removable(inst: Instruction) -> bool:
    """True if *inst* has no observable effect beyond its result value.

    Anything that can trap, write memory, or transfer control must
    stay: a deleted trap would change the crash digest.  Loads are
    removable only through a direct alloca (always in bounds); division
    only by a non-zero constant.
    """
    if isinstance(inst, (ICmp, Cast, Select, GetElementPtr, Phi, Alloca)):
        return True
    if isinstance(inst, Load):
        return isinstance(inst.ptr, Alloca)
    if isinstance(inst, BinOp):
        if inst.op in ("sdiv", "udiv", "srem", "urem"):
            rhs = inst.rhs
            return isinstance(rhs, ConstantInt) and rhs.value != 0
        return True
    return False


class DeadCodeElimination(Transform):
    """Mark-and-sweep dead code elimination over def-use edges.

    Roots are the instructions with effects (stores, calls,
    terminators, potential traps); liveness propagates through operand
    edges.  Sweeping unmarked instructions handles cyclic garbage —
    e.g. a pair of phis feeding only each other — that use-count-driven
    deletion never reaches.
    """

    name = "dce"

    def run_on_function(self, function: Function, ctx: OptContext,
                        result: TransformResult) -> None:
        live: set[int] = set()
        worklist: list[Instruction] = []
        for inst in function.instructions():
            if not _removable(inst):
                live.add(id(inst))
                worklist.append(inst)
        while worklist:
            inst = worklist.pop()
            for op in inst.operands:
                if isinstance(op, Instruction) and id(op) not in live:
                    live.add(id(op))
                    worklist.append(op)
        for block in function.blocks:
            for inst in list(block.instructions):
                if id(inst) not in live:
                    inst.erase_from_parent()
                    result.note("instructions_removed")


# ---------------------------------------------------------------------------
# CFG simplification
# ---------------------------------------------------------------------------

#: Call targets that are safe to move between blocks: a guard hit is an
#: ordered side effect but can never trap, so relocating it does not
#: perturb crash identity (and guard ids travel with the call operand).
_MERGE_SAFE_CALLEES = frozenset({COV_GUARD})


def _merge_safe(inst: Instruction) -> bool:
    """True if *inst* may move into another block without changing any
    possible crash identity (crash sites are named by block)."""
    if isinstance(inst, (ICmp, Cast, Select, GetElementPtr,
                         Br, CondBr, Switch, Ret)):
        return True
    if isinstance(inst, BinOp):
        if inst.op in ("sdiv", "udiv", "srem", "urem"):
            rhs = inst.rhs
            return isinstance(rhs, ConstantInt) and rhs.value != 0
        return True
    if isinstance(inst, (Load, Store)):
        return isinstance(inst.ptr, Alloca)
    if isinstance(inst, Call):
        callee = inst.callee
        return (isinstance(callee, Function)
                and callee.name in _MERGE_SAFE_CALLEES)
    return False  # allocas, unreachable, other calls


class SimplifyCFG(Transform):
    """Unreachable-block removal, jump threading, and block merging.

    Four rewrites run to a local fixpoint per function (each strictly
    shrinks the block or branch count, so termination is structural):

    1. unreachable blocks are deleted, detaching their phi arms;
    2. conditional branches with identical arms become plain branches;
    3. an empty block (lone ``br``) is threaded: predecessors retarget
       to its successor through the epoch-bumping terminator setters,
       so the cached dominator tree is never stale;
    4. a straight-line pair (unique successor / unique predecessor) is
       merged when every moved instruction is provably non-trapping —
       crash identity names the block, so a potentially-trapping
       instruction must keep its block name.
    """

    name = "simplifycfg"

    def run_on_function(self, function: Function, ctx: OptContext,
                        result: TransformResult) -> None:
        if function.is_declaration:
            return
        changed = True
        while changed:
            changed = (self._remove_unreachable(function, result)
                       or self._fold_same_target_condbr(function, result)
                       or self._thread_empty_blocks(function, result)
                       or self._merge_straight_line(function, result))

    @staticmethod
    def _remove_unreachable(function: Function,
                            result: TransformResult) -> bool:
        reachable = cfg.reachable_blocks(function)
        doomed = [b for b in function.blocks[1:] if b not in reachable]
        if not doomed:
            return False
        doomed_ids = {id(b) for b in doomed}
        for block in doomed:
            for succ in {id(s): s for s in block.successors()}.values():
                if id(succ) not in doomed_ids:
                    for inst in succ.instructions:
                        if isinstance(inst, Phi):
                            inst.remove_incoming(block)
                        else:
                            break
            for inst in block.instructions:
                inst.drop_all_operands()
            function.remove_block(block)
            result.note("unreachable_blocks_removed")
        return True

    @staticmethod
    def _fold_same_target_condbr(function: Function,
                                 result: TransformResult) -> bool:
        changed = False
        for block in function.blocks:
            term = block.terminator
            if isinstance(term, CondBr) and term.if_true is term.if_false:
                target = term.if_true
                term.erase_from_parent()
                block.append(Br(target))
                result.note("branches_folded")
                changed = True
        return changed

    @staticmethod
    def _thread_empty_blocks(function: Function,
                             result: TransformResult) -> bool:
        for block in function.blocks[1:]:
            if len(block.instructions) != 1:
                continue
            term = block.instructions[0]
            if not isinstance(term, Br) or term.target is block:
                continue
            target = term.target
            if any(isinstance(i, Phi) for i in target.instructions):
                continue  # a new edge would need a phi arm we can't infer
            for pred in list(cfg.predecessors(function)[block]):
                pred_term = pred.terminator
                if isinstance(pred_term, Br):
                    pred_term.target = target
                elif isinstance(pred_term, CondBr):
                    if pred_term.if_true is block:
                        pred_term.if_true = target
                    if pred_term.if_false is block:
                        pred_term.if_false = target
                elif isinstance(pred_term, Switch):
                    pred_term.retarget_successor(block, target)
            term.drop_all_operands()
            function.remove_block(block)
            result.note("blocks_threaded")
            return True
        return False

    @staticmethod
    def _merge_straight_line(function: Function,
                             result: TransformResult) -> bool:
        preds = cfg.predecessors(function)
        for pred in function.blocks:
            term = pred.terminator
            if not isinstance(term, Br):
                continue
            block = term.target
            if block is pred or preds[block] != [pred]:
                continue
            if not all(_merge_safe(i) for i in block.instructions):
                continue
            # Single-predecessor phis are copies; fold them first.
            for inst in list(block.instructions):
                if not isinstance(inst, Phi):
                    break
                if len(inst.incoming_blocks) != 1:
                    break
                inst.replace_all_uses_with(inst.get_operand(0))
                inst.erase_from_parent()
            if any(isinstance(i, Phi) for i in block.instructions):
                continue
            term.erase_from_parent()
            for inst in list(block.instructions):
                block.remove_instruction(inst)
                pred.append(inst)
            for succ in {id(s): s for s in pred.successors()}.values():
                for inst in succ.instructions:
                    if isinstance(inst, Phi):
                        for i, arm in enumerate(inst.incoming_blocks):
                            if arm is block:
                                inst.incoming_blocks[i] = pred
                    else:
                        break
            function.remove_block(block)
            result.note("blocks_merged")
            return True
        return False
