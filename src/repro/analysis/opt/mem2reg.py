"""Promotion of alloca slots to SSA registers (mem2reg).

MiniC's -O0-style codegen gives every local variable a stack slot and
turns every read/write into a load/store pair — by instruction cost the
single largest source of dynamic work (a load+store round trip costs
24 units against a phi's 5).  This transform rewrites non-escaping
scalar slots into SSA values: phi nodes are placed on the iterated
dominance frontier of the slot's stores (the cached
:func:`repro.ir.cfg.dominance_frontiers`), then a single renaming walk
over the cached dominator tree replaces each load with the reaching
definition and deletes the loads, stores, and the alloca itself.

Two MiniVM-specific rules keep the rewrite bit-exact:

- Stack regions are zero-filled at allocation, so a load on a path
  with no prior store deterministically reads 0 — never-stored paths
  are materialised as integer ``0`` / ``null`` constants rather than
  ``undef`` (which the strict verifier flags).
- Only allocas in the *entry block* are promoted.  An alloca executed
  inside a loop maps a fresh zeroed region per iteration, so carrying
  a value across the back edge through a phi would change semantics;
  entry-block allocas execute exactly once per call.
"""

from __future__ import annotations

from repro.ir import cfg
from repro.ir.instructions import Alloca, Load, Phi, Store
from repro.ir.module import BasicBlock, Function
from repro.ir.types import IntType, PointerType
from repro.ir.values import ConstantInt, ConstantNull, Value

from repro.analysis.opt.transforms import OptContext, Transform, TransformResult


def _promotable_slots(function: Function) -> list[Alloca]:
    slots: list[Alloca] = []
    for inst in function.entry_block.instructions:
        if not isinstance(inst, Alloca):
            continue
        if inst.count != 1 or not isinstance(inst.allocated_type,
                                             (IntType, PointerType)):
            continue
        loads = 0
        escaped = False
        for use in inst.uses:
            user = use.user
            if isinstance(user, Store) and use.index == 1:
                continue
            if isinstance(user, Load) and use.index == 0:
                loads += 1
                continue
            escaped = True  # GEP'd, passed to a call, stored as a value…
            break
        if not escaped and loads:
            slots.append(inst)
    return slots


def _zero_of(type_) -> Value:
    if isinstance(type_, PointerType):
        return ConstantNull(type_)
    return ConstantInt(type_, 0)


class PromoteSlots(Transform):
    """Classic SSA construction for promotable entry-block allocas."""

    name = "mem2reg"

    def run_on_function(self, function: Function, ctx: OptContext,
                        result: TransformResult) -> None:
        if function.is_declaration:
            return
        if len(cfg.reachable_blocks(function)) != len(function.blocks):
            return  # SimplifyCFG owns dead blocks; retry next round
        slots = _promotable_slots(function)
        if not slots:
            return
        tree = cfg.dominator_tree(function)
        frontiers = cfg.dominance_frontiers(function)
        slot_ids = {id(s): s for s in slots}

        # -- phi placement: iterated dominance frontier of the stores --
        phi_for: dict[tuple[int, int], Phi] = {}  # (block, slot) -> phi
        for slot in slots:
            def_blocks = {
                id(u.user.parent): u.user.parent
                for u in slot.uses
                if isinstance(u.user, Store) and u.user.parent is not None
            }
            worklist = list(def_blocks.values())
            sites: dict[int, BasicBlock] = {}
            while worklist:
                block = worklist.pop()
                for frontier_block in frontiers.get(block, ()):
                    if id(frontier_block) in sites:
                        continue
                    sites[id(frontier_block)] = frontier_block
                    if id(frontier_block) not in def_blocks:
                        worklist.append(frontier_block)
            for block in sites.values():
                phi = Phi(slot.allocated_type,
                          function.next_value_name(slot.name or "slot"))
                block.insert(0, phi)
                phi_for[(id(block), id(slot))] = phi
                result.note("phis_inserted")

        # -- renaming walk over the dominator tree ----------------------
        #
        # Loads are RAUW'd and erased the moment they are visited;
        # dominance preorder guarantees every use sees the rewritten
        # value, so the tables never hold references to erased
        # instructions.
        entry_state = {id(s): _zero_of(s.allocated_type) for s in slots}
        stack: list[tuple[BasicBlock, dict[int, Value]]] = [
            (function.entry_block, entry_state)
        ]
        while stack:
            block, incoming = stack.pop()
            for slot in slots:
                phi = phi_for.get((id(block), id(slot)))
                if phi is not None:
                    incoming[id(slot)] = phi
            for inst in list(block.instructions):
                if isinstance(inst, Load) and id(inst.ptr) in slot_ids:
                    inst.replace_all_uses_with(incoming[id(inst.ptr)])
                    inst.erase_from_parent()
                    result.note("loads_rewritten")
                elif isinstance(inst, Store) and id(inst.ptr) in slot_ids:
                    incoming[id(inst.ptr)] = inst.value
                    inst.erase_from_parent()
                    result.note("stores_rewritten")
            for succ in {id(s): s for s in block.successors()}.values():
                for slot in slots:
                    phi = phi_for.get((id(succ), id(slot)))
                    if phi is not None:
                        phi.add_incoming(incoming[id(slot)], block)
            for child in reversed(tree.children.get(block, [])):
                stack.append((child, dict(incoming)))

        for slot in slots:
            slot.erase_from_parent()
            result.note("slots_promoted")
