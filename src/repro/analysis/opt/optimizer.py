"""Optimizer driver: transform rounds gated by translation validation.

The :class:`Optimizer` runs the transform suite
(:mod:`repro.analysis.opt.transforms`, :mod:`~repro.analysis.opt.mem2reg`)
in rounds until a fixpoint or ``max_rounds``.  Every transform that
changed the module must then survive the three validation checks of
:mod:`repro.analysis.opt.validation` — strict-SSA verification, the
structural self-check, and differential replay of the seed corpus
against observations of the *unoptimized* module.  A transform that
fails any check is rolled back from a text checkpoint and reported as
``rejected``; the pipeline continues with the remaining transforms, so
one bad rewrite can never poison the module or mask the others.

Baseline observations are computed once, on the pristine module:
each accepted transform is observation-preserving, so the baseline
remains the correct reference for every later transform.

Telemetry rides the ``analysis.opt.*`` metrics family and the
``analysis.opt.run`` / ``analysis.opt.transform`` trace events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.opt.mem2reg import PromoteSlots
from repro.analysis.opt.transforms import (
    SCCP,
    DeadCodeElimination,
    DeadStoreElimination,
    OptContext,
    RedundantLoadElimination,
    SimplifyCFG,
    SimplifyInstructions,
    Transform,
)
from repro.analysis.opt.validation import (
    ModuleCheckpoint,
    ReplayObservation,
    observe,
    replay_mismatches,
    structural_errors,
)
from repro.ir.module import Module
from repro.ir.verifier import VerificationError, verify_module
from repro.telemetry import NULL_METRICS, NULL_TRACER

#: Transform verdicts, in report order of interest.
VALIDATED = "validated"
REJECTED = "rejected"
NO_CHANGE = "no-change"
UNVALIDATED = "unvalidated"

DEFAULT_MAX_ROUNDS = 3


def default_transforms() -> list[Transform]:
    """The standard pipeline, in dependency order: clean the CFG,
    promote slots, propagate constants, simplify, forward loads, then
    sweep dead stores and code."""
    return [
        SimplifyCFG(),
        PromoteSlots(),
        SCCP(),
        SimplifyInstructions(),
        RedundantLoadElimination(),
        DeadStoreElimination(),
        DeadCodeElimination(),
    ]


@dataclass
class TransformOutcome:
    """One transform application and its validation verdict."""

    transform: str
    round: int
    verdict: str
    details: dict[str, int] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "transform": self.transform,
            "round": self.round,
            "verdict": self.verdict,
            "details": dict(sorted(self.details.items())),
            "errors": list(self.errors),
        }


@dataclass
class OptimizationReport:
    """Everything one :meth:`Optimizer.run` did to one module."""

    module: str
    instructions_before: int
    instructions_after: int
    rounds: int
    replays: int
    validated_against: int  # number of corpus inputs replayed per check
    outcomes: list[TransformOutcome] = field(default_factory=list)

    @property
    def applied(self) -> int:
        return sum(1 for o in self.outcomes if o.verdict in (VALIDATED,
                                                             UNVALIDATED))

    @property
    def rejected(self) -> int:
        return sum(1 for o in self.outcomes if o.verdict == REJECTED)

    @property
    def removed_instructions(self) -> int:
        return self.instructions_before - self.instructions_after

    def to_dict(self) -> dict:
        """Stable, JSON-ready form (insertion order is deterministic)."""
        return {
            "module": self.module,
            "instructions_before": self.instructions_before,
            "instructions_after": self.instructions_after,
            "instructions_removed": self.removed_instructions,
            "rounds": self.rounds,
            "replays": self.replays,
            "validated_against": self.validated_against,
            "applied": self.applied,
            "rejected": self.rejected,
            "transforms": [o.to_dict() for o in self.outcomes],
        }


class Optimizer:
    """Runs validated transform rounds over one module in place."""

    def __init__(
        self,
        module: Module,
        seeds: tuple[bytes, ...] = (),
        transforms: list[Transform] | None = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        validate: bool = True,
        extra_allocators: dict[str, str] | None = None,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
    ):
        self.module = module
        self.seeds = tuple(seeds)
        self.transforms = (transforms if transforms is not None
                           else default_transforms())
        self.max_rounds = max_rounds
        self.validate = validate
        self.extra_allocators = dict(extra_allocators or {})
        self.metrics = metrics
        self.tracer = tracer

    def run(self) -> OptimizationReport:
        module = self.module
        report = OptimizationReport(
            module=module.name,
            instructions_before=module.instruction_count(),
            instructions_after=module.instruction_count(),
            rounds=0,
            replays=0,
            validated_against=len(self.seeds) if self.validate else 0,
        )
        baseline: list[ReplayObservation] = []
        if self.validate and self.seeds:
            baseline = [observe(module, seed) for seed in self.seeds]
            report.replays += len(self.seeds)
        for round_number in range(1, self.max_rounds + 1):
            report.rounds = round_number
            self.metrics.counter("analysis.opt.rounds").inc()
            ctx = OptContext(module, self.extra_allocators)
            round_changed = False
            for transform in self.transforms:
                outcome, ctx = self._run_one(transform, ctx, baseline,
                                             round_number, report)
                report.outcomes.append(outcome)
                if outcome.verdict in (VALIDATED, UNVALIDATED):
                    round_changed = True
            if not round_changed:
                break
        report.instructions_after = module.instruction_count()
        self.metrics.counter("analysis.opt.runs").inc()
        self.metrics.counter("analysis.opt.instructions_removed").inc(
            max(0, report.removed_instructions))
        self.tracer.event(
            "analysis.opt.run",
            module=module.name,
            rounds=report.rounds,
            instructions_before=report.instructions_before,
            instructions_after=report.instructions_after,
            applied=report.applied,
            rejected=report.rejected,
            replays=report.replays,
        )
        return report

    # ------------------------------------------------------------------

    def _run_one(self, transform: Transform, ctx: OptContext,
                 baseline: list[ReplayObservation], round_number: int,
                 report: OptimizationReport) -> tuple[TransformOutcome,
                                                      OptContext]:
        module = self.module
        checkpoint = ModuleCheckpoint(module) if self.validate else None
        try:
            result = transform.run(module, ctx)
        except Exception as exc:  # noqa: BLE001 - a buggy transform must
            # not leave a half-mutated module behind
            if checkpoint is None:
                raise
            checkpoint.restore()
            outcome = TransformOutcome(
                transform.name, round_number, REJECTED,
                errors=[f"transform raised {type(exc).__name__}: {exc}"],
            )
            self._note_rejection(outcome)
            return outcome, OptContext(module, self.extra_allocators)
        if not result.changed:
            return (TransformOutcome(transform.name, round_number, NO_CHANGE),
                    ctx)
        if checkpoint is None:
            self.metrics.counter("analysis.opt.transforms_applied").inc()
            return (TransformOutcome(transform.name, round_number,
                                     UNVALIDATED, details=result.details),
                    ctx)
        errors = self._validation_errors(baseline, report)
        if errors:
            checkpoint.restore()
            outcome = TransformOutcome(transform.name, round_number, REJECTED,
                                       details=result.details, errors=errors)
            self._note_rejection(outcome)
            # The rollback replaced every function object: rebuild the
            # analysis context so later transforms see live IR.
            return outcome, OptContext(module, self.extra_allocators)
        self.metrics.counter("analysis.opt.transforms_applied").inc()
        self.tracer.event(
            "analysis.opt.transform",
            transform=transform.name,
            verdict=VALIDATED,
            round=round_number,
            **{f"detail.{k}": v for k, v in sorted(result.details.items())},
        )
        return (TransformOutcome(transform.name, round_number, VALIDATED,
                                 details=result.details),
                ctx)

    def _note_rejection(self, outcome: TransformOutcome) -> None:
        self.metrics.counter("analysis.opt.transforms_rejected").inc()
        self.tracer.event(
            "analysis.opt.transform",
            transform=outcome.transform,
            verdict=REJECTED,
            round=outcome.round,
            error=outcome.errors[0] if outcome.errors else "",
        )

    def _validation_errors(self, baseline: list[ReplayObservation],
                           report: OptimizationReport) -> list[str]:
        module = self.module
        try:
            verify_module(module, strict_ssa=True)
        except VerificationError as err:
            return [f"verifier: {e}" for e in err.errors[:5]]
        errors = structural_errors(module)
        if errors:
            return [f"structure: {e}" for e in errors]
        if baseline:
            report.replays += len(self.seeds)
            self.metrics.counter("analysis.opt.replays").inc(len(self.seeds))
            mismatches = replay_mismatches(baseline, module,
                                           list(self.seeds))
            if mismatches:
                return [f"replay: {m}" for m in mismatches]
        return []


def optimize_module(
    module: Module,
    seeds: tuple[bytes, ...] = (),
    **kwargs,
) -> OptimizationReport:
    """Optimize *module* in place and return the report."""
    return Optimizer(module, seeds=seeds, **kwargs).run()
