"""Translation validation for the MiniIR optimizer.

Three machine checks gate every transform (no silent miscompiles):

1. **Verifier** — the strict-SSA structural verifier from
   :mod:`repro.ir.verifier` must still pass.
2. **Structural self-check** — every operand is defined inside the
   same function, no erased instruction still holds a use edge, use
   indices agree with operand slots, and phi incoming blocks are live
   blocks of the function.  This catches bookkeeping bugs (dangling
   uses, stale phi arms) that the verifier's value-level checks can
   miss.
3. **Differential replay** — the optimized module is re-executed on
   the seed corpus in a throwaway VM (the
   :mod:`repro.integrity.shadow` fresh-process discipline) and every
   observation must be bit-identical to the unoptimized baseline:
   status, return code, crash identity, coverage map, program output,
   and the final virtual filesystem.

A transform failing any check is rolled back from a
:class:`ModuleCheckpoint` and reported as rejected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import Instruction, Phi
from repro.ir.module import Module
from repro.ir.parser import parse_module
from repro.ir.printer import print_module

#: Pinned ``vm.boot_time`` for replays: ``time()`` is the VM's one
#: source of cross-process non-determinism (each VM normally observes a
#: fresh boot-sequence number), and a differential check needs both
#: sides of the diff to see the same clock.
REPLAY_BOOT_TIME = 1_700_000_000

#: Per-replay instruction budget (matches the harness default).
REPLAY_INSTRUCTION_LIMIT = 2_000_000


@dataclass(frozen=True)
class ReplayObservation:
    """Everything externally observable about one replay of one input.

    ``instructions`` is carried for reporting but deliberately excluded
    from :meth:`matches` — changing the dynamic instruction count is
    the optimizer's entire point.
    """

    status: str
    return_code: int | None
    crash: tuple[str, str, str] | None
    coverage: bytes
    output: tuple[str, ...]
    files: tuple[tuple[str, bytes], ...]
    instructions: int

    def matches(self, other: "ReplayObservation") -> bool:
        return (
            self.status == other.status
            and self.return_code == other.return_code
            and self.crash == other.crash
            and self.coverage == other.coverage
            and self.output == other.output
            and self.files == other.files
        )

    def describe_mismatch(self, other: "ReplayObservation") -> str:
        """Human-readable first point of divergence against *other*."""
        if self.status != other.status:
            return f"status {self.status} != {other.status}"
        if self.return_code != other.return_code:
            return f"return code {self.return_code} != {other.return_code}"
        if self.crash != other.crash:
            return f"crash identity {self.crash} != {other.crash}"
        if self.coverage != other.coverage:
            return "coverage maps differ"
        if self.output != other.output:
            return "program output differs"
        if self.files != other.files:
            return "filesystem contents differ"
        return "observations match"


def _crash_identity(trap) -> tuple[str, str, str] | None:
    if trap is None:
        return None
    kind, function, block = trap.identity()
    return (getattr(kind, "name", str(kind)), function, block)


def observe(module: Module, data: bytes,
            instruction_limit: int = REPLAY_INSTRUCTION_LIMIT
            ) -> ReplayObservation:
    """Replay *data* against *module* in a throwaway VM.

    ClosureX-instrumented modules (``target_main`` present) run one
    harness iteration without restoration; anything else runs ``main``
    directly, file-input style.  Deterministic by construction: fresh
    filesystem, pinned boot time, default PRNG state.
    """
    from repro.passes.rename_main import TARGET_MAIN

    if module.has_function(TARGET_MAIN):
        return _observe_harness(module, data, instruction_limit)
    return _observe_plain(module, data, instruction_limit)


def _observe_harness(module: Module, data: bytes,
                     instruction_limit: int) -> ReplayObservation:
    from repro.runtime.harness import ClosureXHarness, HarnessConfig
    from repro.vm.filesystem import VirtualFS

    fs = VirtualFS()
    harness = ClosureXHarness(
        module, fs=fs,
        config=HarnessConfig(instruction_limit=instruction_limit),
    )
    vm = harness.boot(charge_load=False)
    vm.boot_time = REPLAY_BOOT_TIME
    iteration = harness.run_test_case(data, restore=False)
    return ReplayObservation(
        status=iteration.status.name,
        return_code=iteration.return_code,
        crash=_crash_identity(iteration.trap),
        coverage=bytes(vm.coverage_map),
        output=tuple(vm.output),
        files=tuple(sorted(fs.files.items())),
        instructions=iteration.instructions,
    )


def _observe_plain(module: Module, data: bytes,
                   instruction_limit: int) -> ReplayObservation:
    from repro.execution.common import call_target
    from repro.vm.filesystem import VirtualFS
    from repro.vm.interpreter import VM

    input_path = "/fuzz/input"
    fs = VirtualFS()
    fs.write_file(input_path, data)
    vm = VM(module, fs=fs)
    vm.load()
    vm.boot_time = REPLAY_BOOT_TIME
    vm.instruction_limit = vm.instructions_executed + instruction_limit
    argc, argv = vm.setup_argv([module.name, input_path])
    status, return_code, trap = call_target(
        vm, module.get_function("main"), [argc, argv]
    )
    return ReplayObservation(
        status=status.name,
        return_code=return_code,
        crash=_crash_identity(trap),
        coverage=bytes(vm.coverage_map),
        output=tuple(vm.output),
        files=tuple(sorted(fs.files.items())),
        instructions=vm.instructions_executed,
    )


def replay_mismatches(baseline: list[ReplayObservation], module: Module,
                      inputs: list[bytes], limit: int = 3) -> list[str]:
    """Replay *inputs* against *module* and diff each observation
    against the corresponding *baseline* entry; returns up to *limit*
    mismatch descriptions (empty list = bit-identical)."""
    errors: list[str] = []
    for i, (data, reference) in enumerate(zip(inputs, baseline)):
        got = observe(module, data)
        if not reference.matches(got):
            errors.append(f"replay of input {i}: "
                          f"{reference.describe_mismatch(got)}")
            if len(errors) >= limit:
                break
    return errors


# ---------------------------------------------------------------------------
# structural self-check
# ---------------------------------------------------------------------------


def structural_errors(module: Module, limit: int = 5) -> list[str]:
    """Def-use bookkeeping invariants the verifier does not cover.

    Checks, per defined function: instruction parent links point at a
    block of this function; instruction operands are attached
    instructions of the same function; no use edge is held by a
    detached (erased) instruction; every use's ``index`` names the
    operand slot that actually references the value; and phi incoming
    blocks are blocks of the function.
    """
    errors: list[str] = []
    for function in module.defined_functions():
        members: set[int] = set()
        block_ids = {id(b) for b in function.blocks}
        for block in function.blocks:
            for inst in block.instructions:
                members.add(id(inst))
        for block in function.blocks:
            where = f"@{function.name}:%{block.name}"
            for inst in block.instructions:
                if inst.parent is not block:
                    errors.append(f"{where}: '{inst}' has a broken parent link")
                for index, op in enumerate(inst.operands):
                    if isinstance(op, Instruction) and id(op) not in members:
                        errors.append(
                            f"{where}: operand {index} of '{inst}' is a "
                            f"detached instruction '{op.ref()}'"
                        )
                if isinstance(inst, Phi):
                    for pred in inst.incoming_blocks:
                        if id(pred) not in block_ids:
                            errors.append(
                                f"{where}: phi '{inst.ref()}' has an arm "
                                f"from removed block %{pred.name}"
                            )
                for use in inst.uses:
                    user = use.user
                    if not isinstance(user, Instruction):
                        continue
                    if user.parent is None:
                        errors.append(
                            f"{where}: erased instruction still holds a "
                            f"use of '{inst.ref()}'"
                        )
                    elif (use.index >= user.num_operands
                          or user.get_operand(use.index) is not inst):
                        errors.append(
                            f"{where}: use of '{inst.ref()}' by "
                            f"'{user.ref()}' has a stale operand index"
                        )
                if len(errors) >= limit:
                    return errors
    return errors


# ---------------------------------------------------------------------------
# checkpoint / rollback
# ---------------------------------------------------------------------------


class ModuleCheckpoint:
    """Printed-text snapshot of a module, restorable in place.

    Capture is one ``print_module`` (cheap, exercised by the round-trip
    golden tests); the parse cost is only paid on the rare rejection
    path.  ``restore`` grafts the re-parsed functions, globals, and
    structs back into the *same* :class:`Module` object so references
    held by the caller stay valid.
    """

    def __init__(self, module: Module):
        self.module = module
        self.text = print_module(module)

    def restore(self) -> None:
        fresh = parse_module(self.text)
        module = self.module
        module.functions = fresh.functions
        module.globals = fresh.globals
        module.structs = fresh.structs
        for function in module.functions.values():
            function.module = module
