"""Static-analysis-driven MiniIR optimizer with translation validation.

The package splits into three layers:

- :mod:`~repro.analysis.opt.transforms` and
  :mod:`~repro.analysis.opt.mem2reg` — the rewrites (CFG
  simplification, slot promotion, SCCP, instruction simplification,
  redundant-load and dead-store elimination, DCE), each driven by an
  analysis from :mod:`repro.analysis` or :mod:`repro.ir.cfg`.
- :mod:`~repro.analysis.opt.validation` — the machine checks that gate
  every transform: strict-SSA verification, a def-use structural
  self-check, and differential replay against the unoptimized module
  over a seed corpus (bit-identical coverage maps, crash identities,
  output, and filesystem state).
- :mod:`~repro.analysis.opt.optimizer` — the driver that runs
  transform rounds, rolls back anything validation rejects, and emits
  an :class:`~repro.analysis.opt.optimizer.OptimizationReport`.

Entry points: :func:`optimize_module` for one-shot use, or the
``optimize=True`` knob on the build pipelines in
:mod:`repro.passes.pipelines` / :mod:`repro.targets.framework`.
"""

from repro.analysis.opt.mem2reg import PromoteSlots
from repro.analysis.opt.optimizer import (
    DEFAULT_MAX_ROUNDS,
    NO_CHANGE,
    REJECTED,
    UNVALIDATED,
    VALIDATED,
    OptimizationReport,
    Optimizer,
    TransformOutcome,
    default_transforms,
    optimize_module,
)
from repro.analysis.opt.transforms import (
    SCCP,
    DeadCodeElimination,
    DeadStoreElimination,
    OptContext,
    RedundantLoadElimination,
    SimplifyCFG,
    SimplifyInstructions,
    Transform,
    TransformResult,
    fold_binop,
    fold_cast,
    fold_icmp,
)
from repro.analysis.opt.validation import (
    ModuleCheckpoint,
    ReplayObservation,
    observe,
    replay_mismatches,
    structural_errors,
)

__all__ = [
    "DEFAULT_MAX_ROUNDS", "NO_CHANGE", "REJECTED", "UNVALIDATED",
    "VALIDATED",
    "OptimizationReport", "Optimizer", "TransformOutcome",
    "default_transforms", "optimize_module",
    "PromoteSlots", "SCCP", "DeadCodeElimination", "DeadStoreElimination",
    "OptContext", "RedundantLoadElimination", "SimplifyCFG",
    "SimplifyInstructions", "Transform", "TransformResult",
    "fold_binop", "fold_cast", "fold_icmp",
    "ModuleCheckpoint", "ReplayObservation", "observe",
    "replay_mismatches", "structural_errors",
]
