"""Interprocedural call graph and per-function state summaries.

For every defined function the analyzer computes a
:class:`FunctionSummary`: which of the four ClosureX state dimensions
(heap calls, FILE calls, global stores, ``exit`` reachability) the
function can touch, which named globals it may modify, and which of its
pointer parameters it may store through.  Summaries are propagated
bottom-up over Tarjan SCCs of the call graph, iterating inside each
cycle to a fixpoint, so param-mediated effects (``copy_heading(line,
…)`` writing through a pointer into a global buffer) are attributed to
the right memory objects.

Pointer provenance is resolved by a conservative per-function root
tracer: a pointer's *roots* are the memory objects it may point into —
a named global, a parameter, the stack, the heap, a FILE handle, or
``unknown``.  The tracer follows GEP/cast/select/phi chains and loads
of alloca slots (the -O0 "variables" MiniC codegen emits), using the
slot's flow-insensitive set of stored values; anything it cannot prove
becomes ``unknown``, which the pollution classifier treats as
touching every global.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Function, Module
from repro.ir.types import PointerType
from repro.ir.values import Argument, Constant, ConstantNull, GlobalVariable

# -- extern classification ---------------------------------------------------

#: Allocator-family externs: any reachable call dirties the heap dimension.
HEAP_EXTERNS = frozenset({"malloc", "calloc", "realloc", "free"})

#: FILE-API externs: any reachable call dirties the file dimension.
FILE_EXTERNS = frozenset(
    {"fopen", "fclose", "fread", "fwrite", "fseek", "ftell", "fgetc",
     "feof", "rewind"}
)

#: Externs whose reachable call dirties the exit dimension (what the
#: ExitPass hooks).  ``abort`` stays a crash signal, not an exit.
EXIT_EXTERNS = frozenset({"exit"})

#: Externs that write through their first pointer argument.
WRITES_ARG0 = frozenset({"memcpy", "memmove", "memset", "strcpy", "fread"})

#: Externs returning a pointer derived from their first argument.
RETURNS_ARG0 = frozenset({"memcpy", "memmove", "memset", "strcpy", "strchr"})


def known_extern_names() -> frozenset[str]:
    """Every extern the VM can link: libc natives plus the ClosureX
    hooks the passes declare.  The single source of truth is the VM's
    native table, so the linter's unknown-extern rule can never drift
    from what actually executes."""
    from repro.vm.libc import NATIVES

    return frozenset(NATIVES) | frozenset(
        {"closurex_malloc", "closurex_calloc", "closurex_realloc",
         "closurex_free", "closurex_fopen_hook", "closurex_fclose_hook"}
    )


# -- pointer roots -----------------------------------------------------------

GLOBAL = "global"
PARAM = "param"
HEAP = ("heap",)
STACK = ("stack",)
FILE_HANDLE = ("file",)
UNKNOWN = ("unknown",)
CONST = ("const",)

Root = tuple


def global_root(name: str) -> Root:
    return (GLOBAL, name)

def param_root(index: int) -> Root:
    return (PARAM, index)


class RootTracer:
    """Per-function pointer-provenance resolver (see module docstring)."""

    def __init__(self, function: Function, summaries: "dict[str, FunctionSummary]",
                 heap_externs: frozenset[str]):
        self.function = function
        self.summaries = summaries
        self.heap_externs = heap_externs
        self._memo: dict[int, set[Root]] = {}
        self._in_progress: set[int] = set()
        self._slot_values: dict[int, set] = {}
        self._slot_escapes: set[int] = set()
        self._scan_slots()

    def _scan_slots(self) -> None:
        for inst in self.function.instructions():
            if not isinstance(inst, Alloca):
                continue
            self._slot_values[id(inst)] = set()
            for use in inst.uses:
                user = use.user
                if isinstance(user, Store) and use.index == 1:
                    continue  # store *to* the slot
                if isinstance(user, Load) and use.index == 0:
                    continue  # load *from* the slot
                # Address used any other way (GEP, call arg, stored as a
                # value): contents are no longer tracked precisely.
                self._slot_escapes.add(id(inst))
        for inst in self.function.instructions():
            if isinstance(inst, Store) and isinstance(inst.ptr, Alloca):
                slot = self._slot_values.get(id(inst.ptr))
                if slot is not None:
                    slot.add(inst.value)

    def is_tracked_slot(self, ptr) -> bool:
        """True if *ptr* is a local slot whose contents the tracer
        follows precisely (a non-escaping direct alloca)."""
        return isinstance(ptr, Alloca) and id(ptr) not in self._slot_escapes

    def trace(self, value) -> set[Root]:
        """The set of memory objects *value* may point into."""
        key = id(value)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return set()  # cycle through a slot: least-fixpoint contribution
        self._in_progress.add(key)
        try:
            roots = self._trace(value)
        finally:
            self._in_progress.discard(key)
        self._memo[key] = roots
        return roots

    def _trace(self, value) -> set[Root]:
        if isinstance(value, ConstantNull):
            return {CONST}
        if isinstance(value, Constant):
            return {CONST}
        if isinstance(value, GlobalVariable):
            return {global_root(value.name)}
        if isinstance(value, Function):
            return {CONST}
        if isinstance(value, Argument):
            return {param_root(value.index)}
        if isinstance(value, Alloca):
            return {STACK}
        if isinstance(value, GetElementPtr):
            return self.trace(value.base)
        if isinstance(value, Cast):
            return self.trace(value.value)
        if isinstance(value, Select):
            return self.trace(value.if_true) | self.trace(value.if_false)
        if isinstance(value, Phi):
            roots: set[Root] = set()
            for incoming, _block in value.incoming():
                roots |= self.trace(incoming)
            return roots
        if isinstance(value, Load):
            ptr = value.ptr
            if isinstance(ptr, Alloca) and id(ptr) not in self._slot_escapes:
                stored = self._slot_values.get(id(ptr), set())
                if not stored:
                    return {UNKNOWN}
                roots = set()
                for v in stored:
                    roots |= self.trace(v)
                return roots
            return {UNKNOWN}
        if isinstance(value, Call):
            return self._trace_call(value)
        if isinstance(value, (BinOp, ICmp)):
            return {UNKNOWN}
        return {UNKNOWN}

    def _trace_call(self, call: Call) -> set[Root]:
        callee = call.callee
        if not isinstance(callee, Function):
            return {UNKNOWN}
        if callee.is_declaration:
            if callee.name in self.heap_externs:
                return {HEAP}
            if callee.name == "fopen":
                return {FILE_HANDLE}
            if callee.name in RETURNS_ARG0 and call.args:
                return self.trace(call.args[0])
            if isinstance(call.type, PointerType):
                return {UNKNOWN}
            return {CONST}
        summary = self.summaries.get(callee.name)
        if summary is None:
            return set()  # same-SCC callee, not yet summarised: fixpoint fills in
        roots: set[Root] = set()
        for root in summary.returns_roots:
            if root[0] == PARAM and root[1] < len(call.args):
                roots |= self.trace(call.args[root[1]])
            elif root == STACK:
                # A callee's stack frame is dead after return.
                roots.add(UNKNOWN)
            else:
                roots.add(root)
        return roots


# -- summaries ---------------------------------------------------------------


@dataclass
class FunctionSummary:
    """Mod/ref + escape facts for one defined function (direct effects
    plus everything bound in from its callees)."""

    name: str
    calls_heap: bool = False
    calls_file: bool = False
    calls_exit: bool = False
    calls_unknown_extern: bool = False
    unknown_externs: set[str] = field(default_factory=set)
    #: Named globals this function (or a callee, through a pointer
    #: parameter binding) may store to.
    modified_globals: set[str] = field(default_factory=set)
    #: Named globals whose address escapes into memory or to an extern.
    escaped_globals: set[str] = field(default_factory=set)
    #: Stores through pointers of unresolvable provenance.
    stores_unknown: bool = False
    #: Parameter indices this function may store through.
    stores_params: set[int] = field(default_factory=set)
    #: Parameter indices whose pointee's address may escape into memory.
    escapes_params: set[int] = field(default_factory=set)
    #: Provenance of returned pointers (param roots are call-site bound).
    returns_roots: set[Root] = field(default_factory=set)
    #: Names of defined functions this function calls.
    callees: set[str] = field(default_factory=set)

    def key(self) -> tuple:
        return (
            self.calls_heap, self.calls_file, self.calls_exit,
            self.calls_unknown_extern, frozenset(self.unknown_externs),
            frozenset(self.modified_globals), frozenset(self.escaped_globals),
            self.stores_unknown, frozenset(self.stores_params),
            frozenset(self.escapes_params),
            frozenset(self.returns_roots), frozenset(self.callees),
        )


class CallGraph:
    """Direct-call graph over a module's defined functions."""

    def __init__(self, module: Module):
        self.module = module
        self.edges: dict[str, set[str]] = {}
        self.call_sites: dict[str, list[Call]] = {}
        for function in module.defined_functions():
            callees: set[str] = set()
            sites: list[Call] = []
            for inst in function.instructions():
                if not isinstance(inst, Call):
                    continue
                callee = inst.callee
                if isinstance(callee, Function) and not callee.is_declaration:
                    callees.add(callee.name)
                    sites.append(inst)
            self.edges[function.name] = callees
            self.call_sites[function.name] = sites

    def reachable_from(self, entry: str) -> set[str]:
        """Defined functions reachable from *entry* (inclusive)."""
        if entry not in self.edges:
            return set()
        seen = {entry}
        stack = [entry]
        while stack:
            name = stack.pop()
            for callee in self.edges.get(name, ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen

    def sccs(self) -> list[list[str]]:
        """Strongly connected components in reverse topological order
        (callees before callers), via Tarjan's algorithm."""
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(self.edges.get(root, ()))))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self.edges.get(succ, ())))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)

        for name in sorted(self.edges):
            if name not in index:
                strongconnect(name)
        return components


def _summarise(function: Function, summaries: dict[str, FunctionSummary],
               heap_externs: frozenset[str], known_externs: frozenset[str]) -> FunctionSummary:
    summary = FunctionSummary(function.name)
    tracer = RootTracer(function, summaries, heap_externs)

    def record_write_roots(roots: set[Root]) -> None:
        for root in roots:
            if root[0] == GLOBAL:
                summary.modified_globals.add(root[1])
            elif root[0] == PARAM:
                summary.stores_params.add(root[1])
            elif root == UNKNOWN:
                summary.stores_unknown = True

    def record_escape_roots(roots: set[Root]) -> None:
        for root in roots:
            if root[0] == GLOBAL:
                summary.escaped_globals.add(root[1])
            elif root[0] == PARAM:
                summary.escapes_params.add(root[1])

    for inst in function.instructions():
        if isinstance(inst, Store):
            record_write_roots(tracer.trace(inst.ptr))
            if (isinstance(inst.value.type, PointerType)
                    and not tracer.is_tracked_slot(inst.ptr)):
                # Storing a pointer somewhere the tracer cannot follow:
                # the pointee's address escapes into memory and may be
                # written through later.
                record_escape_roots(tracer.trace(inst.value))
        elif isinstance(inst, Ret):
            if inst.value is not None and isinstance(inst.value.type, PointerType):
                summary.returns_roots |= tracer.trace(inst.value)
        elif isinstance(inst, Call):
            callee = inst.callee
            if not isinstance(callee, Function):
                continue
            if not callee.is_declaration:
                summary.callees.add(callee.name)
                callee_summary = summaries.get(callee.name)
                if callee_summary is not None:
                    for i in callee_summary.stores_params:
                        if i < len(inst.args):
                            record_write_roots(tracer.trace(inst.args[i]))
                    for i in callee_summary.escapes_params:
                        if i < len(inst.args):
                            record_escape_roots(tracer.trace(inst.args[i]))
                continue
            name = callee.name
            if name in heap_externs:
                summary.calls_heap = True
            elif name in FILE_EXTERNS:
                summary.calls_file = True
            elif name in EXIT_EXTERNS:
                summary.calls_exit = True
            if name in WRITES_ARG0 and inst.args:
                record_write_roots(tracer.trace(inst.args[0]))
            if name not in known_externs and name not in heap_externs:
                summary.calls_unknown_extern = True
                summary.unknown_externs.add(name)
                # An unknown extern may write through or stash any
                # pointer it receives.
                for arg in inst.args:
                    if isinstance(arg.type, PointerType):
                        roots = tracer.trace(arg)
                        record_write_roots(roots)
                        record_escape_roots(roots)
    return summary


def summarise_module(module: Module, entry: str = "main",
                     extra_allocators: dict[str, str] | None = None
                     ) -> tuple[CallGraph, dict[str, FunctionSummary]]:
    """Compute the call graph and a fixpoint summary per defined function.

    *extra_allocators* (custom allocator symbol -> malloc-family
    semantic, as accepted by the HeapPass) extends the heap extern set.
    """
    heap_externs = HEAP_EXTERNS | frozenset(extra_allocators or ())
    known = known_extern_names()
    graph = CallGraph(module)
    summaries: dict[str, FunctionSummary] = {}
    functions = {f.name: f for f in module.defined_functions()}
    for component in graph.sccs():
        # Callees of this SCC are already final; iterate the cycle
        # until its summaries stop changing.
        while True:
            changed = False
            for name in component:
                new = _summarise(functions[name], summaries, heap_externs, known)
                old = summaries.get(name)
                if old is None or old.key() != new.key():
                    summaries[name] = new
                    changed = True
            if not changed:
                break
    return graph, summaries
