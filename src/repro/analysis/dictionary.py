"""Static auto-dictionary mining over MiniIR.

The dynamic half of the I2S auto-dictionary only sees compares that
actually *execute*; this module supplies the static half by walking a
module once and harvesting every constant a branch could ask the input
to contain:

- constant operands of ``icmp`` instructions (magic numbers, version
  tags) — both byte orders, since the IR compare width says nothing
  about how the file format stores the value;
- ``switch`` case constants (tag dispatch tables);
- constant-string arguments of the ``memcmp``/``strcmp``/``strncmp``
  libc natives (signatures the interpreter never sees as ``icmp``),
  truncated to the constant length operand where one is given.

Tokens come back in deterministic module order, deduplicated, so the
consuming :class:`~repro.fuzzing.i2s.AutoDictionary` is bit-identical
across runs.  Mining is pure IR inspection — no execution, no clock.
"""

from __future__ import annotations

from repro.ir.instructions import Call, Cast, GetElementPtr, ICmp, Switch
from repro.ir.values import ConstantData, ConstantInt, GlobalVariable

#: Libc natives whose constant arguments are worth harvesting.
CMP_NATIVES = ("memcmp", "strcmp", "strncmp")

#: Integer constants below this are one byte — plain havoc territory.
_MIN_VALUE = 0x100


def _constant_global_bytes(value) -> bytes | None:
    """Resolve *value* to the bytes of a constant global, if it is one.

    Looks through pointer casts and zero-offset GEPs, the two shapes
    MiniC codegen produces when passing a string literal or ``const
    char[]`` global to a libc call.
    """
    while True:
        if isinstance(value, Cast):
            value = value.value
        elif isinstance(value, GetElementPtr):
            for index in value.indices:
                if not (isinstance(index, ConstantInt) and index.value == 0):
                    return None
            value = value.base
        else:
            break
    if not isinstance(value, GlobalVariable):
        return None
    initializer = value.initializer
    if isinstance(initializer, ConstantData):
        return initializer.data
    return None


def _int_tokens(value: int, bits: int) -> list[bytes]:
    """Both-endianness encodings of one harvested integer constant."""
    unsigned = value & ((1 << bits) - 1)
    if unsigned < _MIN_VALUE:
        return []
    nbytes = (unsigned.bit_length() + 7) // 8
    for width in (2, 4, 8):
        if width >= nbytes:
            nbytes = width
            break
    little = unsigned.to_bytes(nbytes, "little")
    big = unsigned.to_bytes(nbytes, "big")
    return [little] if little == big else [little, big]


def _literal_int(value):
    """Look through casts to an integer literal, or None.

    MiniC materializes compare literals as ``cast(const)`` — integer
    literals are i64 and get truncated to the compare width — so the
    interesting :class:`ConstantInt` sits one or more casts down.
    """
    while isinstance(value, Cast):
        value = value.value
    return value if isinstance(value, ConstantInt) else None


def mine_dictionary_tokens(module, max_token_len: int = 32) -> list[bytes]:
    """Harvest dictionary tokens from every function of *module*.

    Returns tokens in deterministic first-seen order (module function
    order, block order, instruction order), deduplicated, each between
    2 and *max_token_len* bytes.
    """
    tokens: list[bytes] = []
    seen: set[bytes] = set()

    def keep(token: bytes) -> None:
        if 2 <= len(token) <= max_token_len and token not in seen:
            seen.add(token)
            tokens.append(token)

    def keep_int(constant, other) -> None:
        literal = _literal_int(constant)
        if literal is not None and _literal_int(other) is None:
            for token in _int_tokens(literal.value, literal.type.bits):
                keep(token)

    for function in module.functions.values():
        for block in function.blocks:
            for inst in block.instructions:
                cls = type(inst)
                if cls is ICmp:
                    keep_int(inst.rhs, inst.lhs)
                    keep_int(inst.lhs, inst.rhs)
                elif cls is Switch:
                    value_bits = getattr(inst.value.type, "bits", None)
                    if value_bits is None:
                        continue
                    for case_value, _block in inst.cases:
                        for token in _int_tokens(case_value, value_bits):
                            keep(token)
                elif cls is Call:
                    callee_name = getattr(inst.callee, "name", "")
                    if callee_name not in CMP_NATIVES:
                        continue
                    args = inst.args
                    length: int | None = None
                    if callee_name in ("memcmp", "strncmp") and len(args) > 2:
                        if isinstance(args[2], ConstantInt):
                            length = args[2].value
                    for arg in args[:2]:
                        data = _constant_global_bytes(arg)
                        if data is None:
                            continue
                        if callee_name == "memcmp" and length is not None:
                            keep(data[:length])
                        else:
                            token = data.split(b"\x00", 1)[0]
                            if length is not None:
                                token = token[:length]
                            keep(token)
    return tokens
