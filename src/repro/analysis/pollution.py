"""Pollution classifier: which process state can a target touch?

ClosureX's passes rewrite every target blindly; the paper's insight is
that correctness only requires tracking the state a target can actually
pollute.  The :class:`PollutionAnalyzer` makes that knowledge explicit:
it runs the interprocedural summary engine of
:mod:`repro.analysis.callgraph` and classifies the module along the
four ClosureX state dimensions —

- ``heap``   — reachable call to the malloc family (HeapPass),
- ``file``   — reachable call to the FILE API (FilePass),
- ``global`` — reachable store that may land in a named global
  (GlobalPass),
- ``exit``   — reachable call to ``exit`` (ExitPass).

The resulting :class:`PollutionReport` names, per dimension, whether it
is dirty and why; pipelines consume :meth:`PollutionReport.skip_passes`
to elide instrumentation that is provably unnecessary, and the runtime
harness consumes :meth:`PollutionReport.is_clean` to skip the matching
sweeps and shrink the snapshot scope.  Everything is conservative: any
fact the analysis cannot prove (an unknown extern, a store through an
untraceable pointer) dirties the affected dimensions, so a *clean*
verdict is a proof.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.callgraph import (
    CallGraph,
    FunctionSummary,
    summarise_module,
)
from repro.ir.module import Module
from repro.telemetry.metrics import NULL_METRICS, MetricsRegistry
from repro.telemetry.tracer import NULL_TRACER, Tracer

#: The four ClosureX state dimensions, in pipeline order.
DIMENSIONS = ("heap", "file", "global", "exit")

#: dimension -> the pass that becomes unnecessary when it is clean.
DIMENSION_PASSES = {
    "heap": "HeapPass",
    "file": "FilePass",
    "global": "GlobalPass",
    "exit": "ExitPass",
}


@dataclass(frozen=True)
class DimensionFinding:
    """Verdict for one state dimension."""

    dimension: str
    dirty: bool
    reasons: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.dirty


@dataclass
class PollutionReport:
    """Per-target pollution classification (the analyzer's output)."""

    module_name: str
    entry: str
    findings: dict[str, DimensionFinding] = field(default_factory=dict)
    #: Writable globals the target may store to (meaningful only when
    #: ``trusted_globals`` — no unknown-provenance stores survived).
    modified_globals: frozenset[str] = frozenset()
    #: False when an unknown store/extern forced the analyzer to assume
    #: every writable global is modified.
    trusted_globals: bool = True
    reachable_functions: frozenset[str] = frozenset()
    analysis_wall_ns: int = 0

    def finding(self, dimension: str) -> DimensionFinding:
        return self.findings[dimension]

    def is_clean(self, dimension: str) -> bool:
        return self.findings[dimension].clean

    def clean_dimensions(self) -> tuple[str, ...]:
        return tuple(d for d in DIMENSIONS if self.findings[d].clean)

    def dirty_dimensions(self) -> tuple[str, ...]:
        return tuple(d for d in DIMENSIONS if self.findings[d].dirty)

    def skip_passes(self) -> set[str]:
        """Pass names whose instrumentation this target provably does
        not need."""
        return {DIMENSION_PASSES[d] for d in self.clean_dimensions()}

    def describe(self) -> str:
        lines = [f"pollution report for {self.module_name!r} (entry @{self.entry})"]
        for dimension in DIMENSIONS:
            finding = self.findings[dimension]
            verdict = "DIRTY" if finding.dirty else "clean"
            lines.append(f"  {dimension:<6} {verdict}")
            for reason in finding.reasons:
                lines.append(f"         - {reason}")
        if self.findings["global"].dirty:
            scope = (
                f"{len(self.modified_globals)} modified globals"
                if self.trusted_globals else "all writable globals (untrusted)"
            )
            lines.append(f"  snapshot scope: {scope}")
        return "\n".join(lines)


class PollutionAnalyzer:
    """Classify a module's pollution along the ClosureX dimensions.

    Run on the *raw* (pre-instrumentation) module: *entry* defaults to
    ``main``, the entry point before the RenameMainPass.  Analysis
    timing is recorded into the optional telemetry *metrics*/*tracer*.
    """

    def __init__(
        self,
        module: Module,
        entry: str = "main",
        extra_allocators: dict[str, str] | None = None,
        metrics: MetricsRegistry = NULL_METRICS,
        tracer: Tracer = NULL_TRACER,
    ):
        self.module = module
        self.entry = entry
        self.extra_allocators = dict(extra_allocators or {})
        self.metrics = metrics
        self.tracer = tracer

    def run(self) -> PollutionReport:
        wall_start = time.perf_counter_ns()
        graph, summaries = summarise_module(
            self.module, self.entry, self.extra_allocators
        )
        reachable = graph.reachable_from(self.entry)
        report = self._classify(graph, summaries, reachable)
        report.analysis_wall_ns = time.perf_counter_ns() - wall_start
        if self.metrics.enabled:
            self.metrics.counter("analysis.pollution_runs").inc()
            self.metrics.histogram("analysis.pollution_wall_ns").observe(
                report.analysis_wall_ns
            )
            self.metrics.gauge("analysis.last_clean_dimensions").set(
                len(report.clean_dimensions())
            )
        if self.tracer.enabled:
            self.tracer.event(
                "analysis.pollution",
                module=self.module.name,
                entry=self.entry,
                wall_ns=report.analysis_wall_ns,
                clean=",".join(report.clean_dimensions()) or "<none>",
            )
        return report

    # ------------------------------------------------------------------

    def _classify(self, graph: CallGraph, summaries: dict[str, FunctionSummary],
                  reachable: set[str]) -> PollutionReport:
        reasons: dict[str, list[str]] = {d: [] for d in DIMENSIONS}
        modified: set[str] = set()
        trusted = True

        if self.entry not in graph.edges:
            # No defined entry point: nothing is reachable, nothing can
            # be proven about runtime behaviour — stay conservative.
            for dimension in DIMENSIONS:
                reasons[dimension].append(
                    f"entry @{self.entry} is not a defined function"
                )
            trusted = False

        for name in sorted(reachable):
            summary = summaries[name]
            if summary.calls_heap:
                reasons["heap"].append(f"@{name} calls the malloc family")
            if summary.calls_file:
                reasons["file"].append(f"@{name} calls the FILE API")
            if summary.calls_exit:
                reasons["exit"].append(f"@{name} can reach exit()")
            if summary.calls_unknown_extern:
                externs = ", ".join(sorted(summary.unknown_externs))
                for dimension in DIMENSIONS:
                    reasons[dimension].append(
                        f"@{name} calls unknown extern(s): {externs}"
                    )
                trusted = False
            if summary.modified_globals:
                modified |= summary.modified_globals
                shown = ", ".join(sorted(summary.modified_globals))
                reasons["global"].append(f"@{name} stores to {shown}")
            if summary.escaped_globals:
                # Address taken: assume whoever holds it may write.
                modified |= summary.escaped_globals
                shown = ", ".join(sorted(summary.escaped_globals))
                reasons["global"].append(f"@{name} leaks the address of {shown}")
            if summary.stores_unknown:
                reasons["global"].append(
                    f"@{name} stores through an untraceable pointer"
                )
                trusted = False

        writable = {n for n, g in self.module.globals.items() if not g.is_constant}
        if not trusted:
            modified = set(writable)
        else:
            # Constants cannot be modified even if the tracer saw a
            # store root land on one (it cannot, but stay defensive).
            modified &= writable

        findings = {
            dimension: DimensionFinding(
                dimension, dirty=bool(reasons[dimension]),
                reasons=tuple(reasons[dimension][:8]),
            )
            for dimension in ("heap", "file", "exit")
        }
        findings["global"] = DimensionFinding(
            "global", dirty=bool(modified) or bool(reasons["global"]),
            reasons=tuple(reasons["global"][:8]),
        )
        return PollutionReport(
            module_name=self.module.name,
            entry=self.entry,
            findings=findings,
            modified_globals=frozenset(modified),
            trusted_globals=trusted,
            reachable_functions=frozenset(reachable),
        )


def analyze_pollution(module: Module, entry: str = "main",
                      extra_allocators: dict[str, str] | None = None,
                      metrics: MetricsRegistry = NULL_METRICS,
                      tracer: Tracer = NULL_TRACER) -> PollutionReport:
    """Convenience wrapper around :class:`PollutionAnalyzer`."""
    return PollutionAnalyzer(
        module, entry, extra_allocators, metrics=metrics, tracer=tracer
    ).run()
