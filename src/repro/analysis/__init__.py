"""Static analysis over MiniIR: dataflow, summaries, pollution, lint.

The package layers on top of :mod:`repro.ir` (never the other way
around — the IR stays import-light):

- :mod:`repro.analysis.dataflow` — generic worklist solver plus
  liveness, reaching definitions, and def-use chains.
- :mod:`repro.analysis.callgraph` — interprocedural call graph and
  per-function mod/ref + escape summaries.
- :mod:`repro.analysis.pollution` — the ClosureX pollution classifier:
  which of the four state dimensions (heap, file, global, exit) a
  target can touch, consumed by the pass pipeline and the runtime
  harness to elide provably-unnecessary work.
- :mod:`repro.analysis.dictionary` — static auto-dictionary mining
  (``icmp``/``switch``/``memcmp``-family constants) feeding the
  input-to-state mutation stage (:mod:`repro.fuzzing.i2s`).
- :mod:`repro.analysis.lint` — diagnostic lint rules with structured
  severities for CI gating.
- :mod:`repro.analysis.opt` — the analysis-driven optimizer: validated
  IR-to-IR transforms (mem2reg, SCCP, load forwarding, dead-store and
  dead-code elimination, CFG simplification) gated by translation
  validation against differential replay of the seed corpus.
"""

from repro.analysis.callgraph import (
    CallGraph,
    FunctionSummary,
    known_extern_names,
    summarise_module,
)
from repro.analysis.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    Liveness,
    ReachingDefinitions,
    alloca_slots,
    dead_slot_stores,
    def_use_chains,
    escaping_slots,
    live_values,
    reaching_stores,
    stores_reaching,
    unused_definitions,
)
from repro.analysis.dictionary import mine_dictionary_tokens
from repro.analysis.lint import Diagnostic, Linter, Severity, lint_module
from repro.analysis.pollution import (
    DIMENSION_PASSES,
    DIMENSIONS,
    DimensionFinding,
    PollutionAnalyzer,
    PollutionReport,
    analyze_pollution,
)

__all__ = [
    "CallGraph",
    "FunctionSummary",
    "known_extern_names",
    "summarise_module",
    "DataflowAnalysis",
    "DataflowResult",
    "Liveness",
    "ReachingDefinitions",
    "alloca_slots",
    "dead_slot_stores",
    "def_use_chains",
    "escaping_slots",
    "live_values",
    "reaching_stores",
    "stores_reaching",
    "unused_definitions",
    "mine_dictionary_tokens",
    "Diagnostic",
    "Linter",
    "Severity",
    "lint_module",
    "DIMENSION_PASSES",
    "DIMENSIONS",
    "DimensionFinding",
    "PollutionAnalyzer",
    "PollutionReport",
    "analyze_pollution",
]
