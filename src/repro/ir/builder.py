"""IRBuilder: convenience layer for constructing MiniIR.

The builder keeps an insertion point (a basic block) and offers one
method per instruction kind, auto-naming result values.  It is the API
used by the MiniC code generator and by hand-written IR in tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import IntType, PointerType, Type, int_type
from repro.ir.values import ConstantInt, Value


class IRBuilder:
    """Stateful instruction factory bound to an insertion block."""

    def __init__(self, block: BasicBlock | None = None):
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise ValueError("builder has no insertion point")
        return self.block.parent

    @property
    def module(self) -> Module:
        mod = self.function.module
        if mod is None:
            raise ValueError("function is not attached to a module")
        return mod

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def _insert(self, inst: Instruction, name_hint: str = "") -> Instruction:
        if self.block is None:
            raise ValueError("builder has no insertion point")
        if not inst.type.is_void and not inst.name:
            inst.set_name(self.function.next_value_name(name_hint))
        self.block.append(inst)
        return inst

    # -- constants ----------------------------------------------------

    def const(self, bits: int, value: int) -> ConstantInt:
        return ConstantInt(int_type(bits), value)

    def i32(self, value: int) -> ConstantInt:
        return self.const(32, value)

    def i64(self, value: int) -> ConstantInt:
        return self.const(64, value)

    def i8(self, value: int) -> ConstantInt:
        return self.const(8, value)

    def i1(self, value: int) -> ConstantInt:
        return self.const(1, value)

    # -- arithmetic ---------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(BinOp(op, lhs, rhs), name or op)

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sdiv", lhs, rhs, name)

    def udiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("udiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("srem", lhs, rhs, name)

    def urem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("urem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("lshr", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("ashr", lhs, rhs, name)

    # -- comparisons --------------------------------------------------

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(ICmp(predicate, lhs, rhs), name or "cmp")

    # -- memory -------------------------------------------------------

    def alloca(self, allocated_type: Type, count: int = 1, name: str = "") -> Value:
        return self._insert(Alloca(allocated_type, count), name or "slot")

    def load(self, ptr: Value, name: str = "") -> Value:
        return self._insert(Load(ptr), name or "ld")

    def store(self, value: Value, ptr: Value) -> Instruction:
        return self._insert(Store(value, ptr))

    def gep(self, base: Value, indices: Sequence[Value], name: str = "") -> Value:
        return self._insert(GetElementPtr(base, list(indices)), name or "gep")

    def struct_gep(self, base: Value, field_index: int, name: str = "") -> Value:
        """GEP to a struct field: ``getelementptr %T, ptr, 0, field``."""
        return self.gep(base, [self.i64(0), self.i32(field_index)], name)

    def array_gep(self, base: Value, index: Value, name: str = "") -> Value:
        """GEP to an array element through a pointer-to-array."""
        return self.gep(base, [self.i64(0), index], name)

    def elem_ptr(self, base: Value, index: Value, name: str = "") -> Value:
        """Pointer arithmetic: ``base + index`` scaled by pointee size."""
        return self.gep(base, [index], name)

    # -- casts --------------------------------------------------------

    def cast(self, op: str, value: Value, to_type: Type, name: str = "") -> Value:
        return self._insert(Cast(op, value, to_type), name or op)

    def trunc(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("trunc", value, to_type, name)

    def zext(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("zext", value, to_type, name)

    def sext(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("sext", value, to_type, name)

    def bitcast(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("bitcast", value, to_type, name)

    def ptrtoint(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("ptrtoint", value, to_type, name)

    def inttoptr(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("inttoptr", value, to_type, name)

    def resize_int(self, value: Value, to_type: IntType, signed: bool = True, name: str = "") -> Value:
        """Widen/narrow an integer as needed; no-op when widths match."""
        assert isinstance(value.type, IntType)
        if value.type.bits == to_type.bits:
            return value
        if value.type.bits > to_type.bits:
            return self.trunc(value, to_type, name)
        return self.sext(value, to_type, name) if signed else self.zext(value, to_type, name)

    # -- other value-producing instructions ---------------------------

    def call(self, callee, args: Sequence[Value], name: str = "") -> Value:
        return self._insert(Call(callee, list(args)), name or "call")

    def select(self, cond: Value, if_true: Value, if_false: Value, name: str = "") -> Value:
        return self._insert(Select(cond, if_true, if_false), name or "sel")

    def phi(self, type_: Type, name: str = "") -> Phi:
        inst = Phi(type_)
        self._insert(inst, name or "phi")
        return inst

    # -- control flow -------------------------------------------------

    def br(self, target: BasicBlock) -> Instruction:
        return self._insert(Br(target))

    def cond_br(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Instruction:
        return self._insert(CondBr(cond, if_true, if_false))

    def switch(self, value: Value, default: BasicBlock) -> Switch:
        inst = Switch(value, default)
        self._insert(inst)
        return inst

    def ret(self, value: Value | None = None) -> Instruction:
        return self._insert(Ret(value))

    def unreachable(self) -> Instruction:
        return self._insert(Unreachable())

    # -- helpers ------------------------------------------------------

    def append_block(self, name: str = "") -> BasicBlock:
        return self.function.append_block(name)

    def ensure_pointer(self, value: Value) -> Value:
        if not isinstance(value.type, PointerType):
            raise TypeError(f"expected pointer, got {value.type}")
        return value
