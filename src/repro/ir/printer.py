"""Textual printer for MiniIR (LLVM-assembly-flavoured output).

The printer exists for debugging, golden tests, and documentation; the
VM executes the in-memory form directly.
"""

from __future__ import annotations

from repro.ir.module import Function, Module


def print_function(function: Function) -> str:
    if function.is_declaration:
        proto = ", ".join(str(t) for t in function.function_type.params)
        return f"declare {function.return_type} @{function.name}({proto})"
    proto = ", ".join(
        f"{arg.type} %{arg.name}" for arg in function.args
    )
    header = f"{function.return_type} @{function.name}({proto})"
    lines = [f"define {header} {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {inst}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    parts: list[str] = [f"; ModuleID = '{module.name}'"]
    if module.structs:
        parts.append("")
        for struct in module.structs.values():
            parts.append(struct.describe())
    if module.globals:
        parts.append("")
        for var in module.globals.values():
            parts.append(str(var))
    for function in module.functions.values():
        parts.append("")
        parts.append(print_function(function))
    return "\n".join(parts) + "\n"
