"""Textual MiniIR parser: reads what :mod:`repro.ir.printer` writes.

Enables golden-file workflows and exact round-tripping
(``parse_module(print_module(m))`` reconstructs an equivalent module).
The grammar is precisely the printer's output language — this is an
assembler for MiniIR, not a general LLVM parser.
"""

from __future__ import annotations

import re

from repro.ir.builder import IRBuilder
from repro.ir.instructions import BINARY_OPS, CAST_OPS, Phi
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
    int_type,
    pointer_type,
)
from repro.ir.values import (
    ConstantData,
    ConstantInt,
    ConstantNull,
    UndefValue,
    Value,
    ZeroInitializer,
)


class IRParseError(Exception):
    """Malformed textual IR."""

    def __init__(self, message: str, line_number: int = 0, line: str = ""):
        self.line_number = line_number
        self.line = line
        location = f" (line {line_number}: {line.strip()!r})" if line_number else ""
        super().__init__(f"{message}{location}")


class _TypeParser:
    """Parses type syntax: ``i32``, ``i8*``, ``[4 x i32]``, ``%name``."""

    def __init__(self, structs: dict[str, StructType]):
        self.structs = structs

    def parse(self, text: str) -> Type:
        text = text.strip()
        stars = 0
        while text.endswith("*"):
            stars += 1
            text = text[:-1].strip()
        base = self._parse_base(text)
        for _ in range(stars):
            base = pointer_type(base)
        return base

    def _parse_base(self, text: str) -> Type:
        if text == "void":
            return VOID
        if re.fullmatch(r"i\d+", text):
            return int_type(int(text[1:]))
        if text.startswith("%"):
            name = text[1:]
            if name not in self.structs:
                raise IRParseError(f"unknown struct type %{name}")
            return self.structs[name]
        match = re.fullmatch(r"\[(\d+) x (.+)\]", text)
        if match:
            return ArrayType(self.parse(match.group(2)), int(match.group(1)))
        raise IRParseError(f"cannot parse type {text!r}")

    def split_typed_list(self, text: str) -> list[tuple[str, str]]:
        """Split ``i32 %a, [4 x i8]* %b`` into (type, operand) pairs,
        respecting bracket nesting."""
        out: list[tuple[str, str]] = []
        for part in _split_commas(text):
            part = part.strip()
            if not part:
                continue
            type_text, _, operand = part.rpartition(" ")
            out.append((type_text.strip(), operand.strip()))
        return out


def _split_commas(text: str) -> list[str]:
    """Comma split that ignores commas inside [...] brackets."""
    parts: list[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current)
    return parts


class IRParser:
    """Single-pass parser over the printer's module text."""

    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.index = 0
        self.module: Module | None = None
        self.types: _TypeParser | None = None

    # -- line helpers ---------------------------------------------------

    def _next_meaningful(self) -> str | None:
        while self.index < len(self.lines):
            line = self.lines[self.index]
            self.index += 1
            stripped = line.strip()
            if stripped and not stripped.startswith(";"):
                return line
        return None

    def _error(self, message: str, line: str = "") -> IRParseError:
        return IRParseError(message, self.index, line)

    # -- module level -----------------------------------------------------

    def parse(self) -> Module:
        name_match = None
        for line in self.lines:
            name_match = re.match(r"; ModuleID = '(.*)'", line.strip())
            if name_match:
                break
        self.module = Module(name_match.group(1) if name_match else "parsed")
        self.types = _TypeParser(self.module.structs)

        # Pass 1: struct types, globals, and function signatures (so
        # call operands resolve regardless of definition order).
        self._scan_signatures()

        # Pass 2: function bodies.
        self.index = 0
        while True:
            line = self._next_meaningful()
            if line is None:
                return self.module
            stripped = line.strip()
            if stripped.startswith("define "):
                self._parse_function_body(stripped)

    def _scan_signatures(self) -> None:
        assert self.module is not None and self.types is not None
        self.index = 0
        while True:
            line = self._next_meaningful()
            if line is None:
                break
            stripped = line.strip()
            if stripped.startswith("%") and "= type" in stripped:
                self._parse_struct(stripped)
            elif stripped.startswith("@"):
                self._parse_global(stripped)
            elif stripped.startswith(("declare ", "define ")):
                self._parse_signature(stripped)

    def _parse_struct(self, line: str) -> None:
        match = re.fullmatch(r"%(\w[\w.]*) = type \{ ?(.*?) ?\}", line)
        if not match:
            raise self._error("malformed struct", line)
        name, body = match.groups()
        struct = self.module.add_struct(StructType(name, []))
        fields = []
        for part in _split_commas(body):
            part = part.strip()
            if not part:
                continue
            type_text, _, field_name = part.rpartition(" ")
            fields.append((field_name, self.types.parse(type_text)))
        struct.set_fields(fields)

    def _parse_global(self, line: str) -> None:
        match = re.fullmatch(
            r"@([\w.$-]+) = (global|constant) (.+?) "
            r"(zeroinitializer|null|c\"[0-9a-fA-F]*\"|-?\d+)"
            r'(?:, section "([^"]*)")?',
            line,
        )
        if not match:
            raise self._error("malformed global", line)
        name, kind, type_text, init_text, section = match.groups()
        value_type = self.types.parse(type_text)
        initializer = self._parse_initializer(value_type, init_text)
        self.module.add_global(
            name, value_type, initializer,
            is_constant=(kind == "constant"),
            section=section or "",
        )

    def _parse_initializer(self, value_type: Type, text: str):
        if text == "zeroinitializer":
            return ZeroInitializer(value_type)
        if text == "null":
            return ConstantNull(value_type)  # type: ignore[arg-type]
        if text.startswith('c"'):
            return ConstantData(value_type, bytes.fromhex(text[2:-1]))
        if isinstance(value_type, IntType):
            return ConstantInt(value_type, int(text))
        raise self._error(f"unsupported initializer {text!r}")

    _SIGNATURE = re.compile(
        r"(declare|define) (.+?) @([\w.$-]+)\((.*?)\)(?: \{)?$"
    )

    def _parse_signature(self, line: str) -> None:
        match = self._SIGNATURE.fullmatch(line)
        if not match:
            raise self._error("malformed function header", line)
        _kind, ret_text, name, params_text = match.groups()
        param_types = []
        param_names = []
        for part in _split_commas(params_text):
            part = part.strip()
            if not part:
                continue
            if part.endswith(tuple("*]")) or " " not in part or not part.split()[-1].startswith("%"):
                param_types.append(self.types.parse(part))
                param_names.append("")
            else:
                type_text, _, pname = part.rpartition(" ")
                param_types.append(self.types.parse(type_text))
                param_names.append(pname.lstrip("%"))
        signature = FunctionType(self.types.parse(ret_text), param_types)
        function = self.module.add_function(name, signature)
        if line.startswith("define"):
            function.ensure_args(param_names)
        # skip the body during the signature scan
        if line.startswith("define"):
            while True:
                body_line = self._next_meaningful()
                if body_line is None or body_line.strip() == "}":
                    return

    # -- function bodies -----------------------------------------------------

    def _parse_function_body(self, header: str) -> None:
        match = self._SIGNATURE.fullmatch(header)
        assert match is not None
        function = self.module.get_function(match.group(3))
        values: dict[str, Value] = {f"%{arg.name}": arg for arg in function.args}
        blocks: dict[str, BasicBlock] = {}
        pending: list[tuple[BasicBlock, str]] = []

        current: BasicBlock | None = None
        while True:
            line = self._next_meaningful()
            if line is None:
                raise self._error("unterminated function body", header)
            stripped = line.strip()
            if stripped == "}":
                break
            label = re.fullmatch(r"([\w.$-]+):", stripped)
            if label:
                current = self._get_block(function, blocks, label.group(1))
                continue
            if current is None:
                raise self._error("instruction before first label", line)
            pending.append((current, stripped))

        # Instructions are parsed after all labels exist.
        for block, text in pending:
            self._parse_instruction(function, block, blocks, values, text)
        self._resolve_phis(function, blocks, values)

    def _get_block(self, function: Function, blocks: dict[str, BasicBlock],
                   name: str) -> BasicBlock:
        if name not in blocks:
            block = BasicBlock(name, function)
            function.blocks.append(block)
            blocks[name] = block
        return blocks[name]

    def _operand(self, values: dict[str, Value], type_: Type, text: str) -> Value:
        text = text.strip()
        if text.startswith("%"):
            if text not in values:
                raise self._error(f"unknown value {text}")
            return values[text]
        if text.startswith("@"):
            name = text[1:]
            if self.module.has_function(name):
                return self.module.get_function(name)
            return self.module.get_global(name)
        if text == "null":
            assert isinstance(type_, PointerType)
            return ConstantNull(type_)
        if text == "undef":
            return UndefValue(type_)
        if isinstance(type_, IntType):
            return ConstantInt(type_, int(text))
        raise self._error(f"cannot parse operand {text!r} of type {type_}")

    _PHI_ARM = re.compile(r"\[ (.+?), %([\w.$-]+) \]")

    def _parse_instruction(self, function, block, blocks, values, text) -> None:
        builder = IRBuilder(block)
        result_name = None
        body = text
        match = re.match(r"(%[\w.$-]+) = (.+)", text)
        if match:
            result_name, body = match.groups()

        inst = self._build(function, block, blocks, values, builder, body)
        if result_name is not None:
            if inst is None:
                raise self._error("void instruction cannot have a result", text)
            inst.set_name(result_name[1:])
            values[result_name] = inst

    def _build(self, function, block, blocks, values, builder, body):
        opcode, _, rest = body.partition(" ")

        if opcode in BINARY_OPS:
            type_text, _, operand_text = rest.strip().partition(" ")
            operand_type = self.types.parse(type_text)
            lhs_text, rhs_text = _split_commas(operand_text)
            lhs = self._operand(values, operand_type, lhs_text)
            rhs = self._operand(values, operand_type, rhs_text)
            return builder.binop(opcode, lhs, rhs)

        if opcode == "icmp":
            predicate, _, rest2 = rest.partition(" ")
            type_text, _, operand_text = rest2.strip().partition(" ")
            operand_type = self.types.parse(type_text)
            lhs_text, rhs_text = _split_commas(operand_text)
            return builder.icmp(
                predicate,
                self._operand(values, operand_type, lhs_text),
                self._operand(values, operand_type, rhs_text),
            )

        if opcode == "alloca":
            parts = _split_commas(rest)
            allocated = self.types.parse(parts[0])
            count = int(parts[1]) if len(parts) > 1 else 1
            return builder.alloca(allocated, count)

        if opcode == "load":
            _value_type, pointer_part = _split_commas(rest)
            type_text, _, operand = pointer_part.strip().rpartition(" ")
            pointer = self._operand(values, self.types.parse(type_text), operand)
            return builder.load(pointer)

        if opcode == "store":
            value_part, pointer_part = _split_commas(rest)
            value_type_text, _, value_text = value_part.strip().rpartition(" ")
            pointer_type_text, _, pointer_text = pointer_part.strip().rpartition(" ")
            value = self._operand(values, self.types.parse(value_type_text), value_text)
            pointer = self._operand(values, self.types.parse(pointer_type_text), pointer_text)
            return builder.store(value, pointer)

        if opcode == "getelementptr":
            parts = _split_commas(rest)
            base_type_text, _, base_text = parts[1].strip().rpartition(" ")
            base = self._operand(values, self.types.parse(base_type_text), base_text)
            indices = []
            for part in parts[2:]:
                index_type_text, _, index_text = part.strip().rpartition(" ")
                indices.append(
                    self._operand(values, self.types.parse(index_type_text), index_text)
                )
            return builder.gep(base, indices)

        if opcode == "call" or (opcode == "void" and rest.startswith("@")):
            return self._build_call(values, builder, body)

        if opcode in CAST_OPS:
            match = re.fullmatch(r"(.+?) (.+?) to (.+)", rest)
            if not match:
                raise self._error(f"malformed cast: {body}")
            from_type_text, operand_text, to_type_text = match.groups()
            operand = self._operand(values, self.types.parse(from_type_text),
                                    operand_text)
            return builder.cast(opcode, operand, self.types.parse(to_type_text))

        if opcode == "select":
            parts = _split_commas(rest)
            cond_text = parts[0].strip().rpartition(" ")[2]
            cond = self._operand(values, int_type(1), cond_text)
            true_type_text, _, true_text = parts[1].strip().rpartition(" ")
            false_text = parts[2].strip().rpartition(" ")[2]
            arm_type = self.types.parse(true_type_text)
            return builder.select(
                cond,
                self._operand(values, arm_type, true_text),
                self._operand(values, arm_type, false_text),
            )

        if opcode == "phi":
            type_text = rest.split(" [", 1)[0]
            phi = Phi(self.types.parse(type_text))
            block.append(phi)
            phi._pending_arms = self._PHI_ARM.findall(rest)  # resolved later
            return phi

        if opcode == "br":
            if rest.startswith("label"):
                target = rest.split("%", 1)[1]
                return builder.br(self._get_block(function, blocks, target))
            match = re.fullmatch(
                r"i1 (.+?), label %([\w.$-]+), label %([\w.$-]+)", rest
            )
            if not match:
                raise self._error(f"malformed br: {body}")
            cond = self._operand(values, int_type(1), match.group(1))
            return builder.cond_br(
                cond,
                self._get_block(function, blocks, match.group(2)),
                self._get_block(function, blocks, match.group(3)),
            )

        if opcode == "switch":
            match = re.fullmatch(
                r"(.+?) (.+?), label %([\w.$-]+) \[ ?(.*?) ?\]", rest
            )
            if not match:
                raise self._error(f"malformed switch: {body}")
            type_text, value_text, default_name, cases_text = match.groups()
            value = self._operand(values, self.types.parse(type_text), value_text)
            switch = builder.switch(
                value, self._get_block(function, blocks, default_name)
            )
            for case_value, case_block in re.findall(
                r"[\w\d]+ (-?\d+), label %([\w.$-]+)", cases_text
            ):
                switch.add_case(int(case_value),
                                self._get_block(function, blocks, case_block))
            return switch

        if opcode == "ret":
            if rest.strip() == "void":
                return builder.ret()
            type_text, _, value_text = rest.strip().partition(" ")
            return builder.ret(
                self._operand(values, self.types.parse(type_text), value_text)
            )

        if opcode == "unreachable" or body.strip() == "unreachable":
            return builder.unreachable()

        raise self._error(f"unknown instruction {body!r}")

    _CALL = re.compile(r"call (.+?) @([\w.$-]+)\((.*)\)")

    def _build_call(self, values, builder, body):
        match = self._CALL.fullmatch(body)
        if not match:
            raise self._error(f"malformed call: {body}")
        _ret_text, callee_name, args_text = match.groups()
        callee = self.module.get_function(callee_name)
        args = []
        for part in _split_commas(args_text):
            part = part.strip()
            if not part:
                continue
            type_text, _, operand_text = part.rpartition(" ")
            args.append(self._operand(values, self.types.parse(type_text),
                                      operand_text))
        return builder.call(callee, args)

    def _resolve_phis(self, function, blocks, values) -> None:
        for block in function.blocks:
            for inst in block.instructions:
                if isinstance(inst, Phi) and hasattr(inst, "_pending_arms"):
                    for value_text, block_name in inst._pending_arms:
                        inst.add_incoming(
                            self._operand(values, inst.type, value_text),
                            blocks[block_name],
                        )
                    del inst._pending_arms


def parse_module(text: str) -> Module:
    """Parse printer-format textual IR into a fresh module."""
    return IRParser(text).parse()
