"""Control-flow-graph utilities over MiniIR functions.

Used by the verifier (reachability, strict-SSA dominance), the
CoveragePass (edge enumeration), the ``repro.analysis`` dataflow
framework, and the experiments (edge-universe size for coverage
percentages, matching the paper's edge-coverage metric).

CFG-derived facts — predecessors, reachability, reverse post-order,
dominator trees — are cached per function and keyed on the function's
``cfg_epoch`` mutation counter: block or instruction mutation bumps the
epoch (see :meth:`repro.ir.module.Function.invalidate_cfg`), so repeat
queries over an unchanged function (verifier after every pass, linter,
pollution analysis) pay the traversal once.  Callers must treat the
returned containers as read-only.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Callable

from repro.ir.module import BasicBlock, Function, Module

Edge = tuple[BasicBlock, BasicBlock]


# ---------------------------------------------------------------------------
# per-function cache, invalidated by Function.cfg_epoch
# ---------------------------------------------------------------------------


class _CacheEntry:
    __slots__ = ("epoch", "results")

    def __init__(self, epoch: int):
        self.epoch = epoch
        self.results: dict[str, object] = {}


_CACHE: "weakref.WeakKeyDictionary[Function, _CacheEntry]" = (
    weakref.WeakKeyDictionary()
)


def _cached(function: Function, key: str, compute: Callable[[Function], object]):
    entry = _CACHE.get(function)
    if entry is None or entry.epoch != function.cfg_epoch:
        entry = _CacheEntry(function.cfg_epoch)
        _CACHE[function] = entry
    result = entry.results.get(key)
    if result is None:
        result = compute(function)
        # Cache only if the function did not mutate *during* compute
        # (a buggy analysis that edits the IR mid-traversal must not
        # poison the cache for the epoch it bumped away from).
        if function.cfg_epoch == entry.epoch:
            entry.results[key] = result
    return result


def invalidate(function: Function) -> None:
    """Explicitly drop cached CFG facts for *function*.

    Equivalent to :meth:`Function.invalidate_cfg`.  All built-in
    mutation paths — block insertion/removal (including
    :meth:`Function.remove_block`), instruction insertion/removal, and
    in-place terminator retargeting through the ``Br.target`` /
    ``CondBr.if_true`` / ``CondBr.if_false`` / ``Switch.default``
    property setters and :meth:`Switch.retarget_successor` — already
    bump the epoch; this remains for callers mutating the CFG through
    some back door (e.g. editing ``Switch.cases`` directly).
    """
    function.invalidate_cfg()
    _CACHE.pop(function, None)


# ---------------------------------------------------------------------------
# basic CFG queries
# ---------------------------------------------------------------------------


def successors(block: BasicBlock) -> list[BasicBlock]:
    return block.successors()


def _compute_predecessors(function: Function) -> dict[BasicBlock, list[BasicBlock]]:
    preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            preds[succ].append(block)
    return preds


def predecessors(function: Function) -> dict[BasicBlock, list[BasicBlock]]:
    """Predecessor map of *function* (cached; treat as read-only)."""
    return _cached(function, "preds", _compute_predecessors)  # type: ignore[return-value]


def _compute_reachable(function: Function) -> set[BasicBlock]:
    if function.is_declaration:
        return set()
    seen: set[BasicBlock] = {function.entry_block}
    queue: deque[BasicBlock] = deque([function.entry_block])
    while queue:
        block = queue.popleft()
        for succ in block.successors():
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen


def reachable_blocks(function: Function) -> set[BasicBlock]:
    """Blocks reachable from the entry block (cached; read-only)."""
    return _cached(function, "reachable", _compute_reachable)  # type: ignore[return-value]


def function_edges(function: Function) -> list[Edge]:
    """All CFG edges of a function, in deterministic order."""
    edges: list[Edge] = []
    for block in function.blocks:
        for succ in block.successors():
            edges.append((block, succ))
    return edges


def module_edges(module: Module) -> list[Edge]:
    edges: list[Edge] = []
    for function in module.defined_functions():
        edges.extend(function_edges(function))
    return edges


def edge_count(module: Module) -> int:
    """Size of the static edge universe (denominator of edge coverage)."""
    return len(module_edges(module))


def call_site_count(module: Module) -> int:
    """Number of call instructions to *defined* functions.

    Each such call adds up to two dynamic edge-map pairs (entry into
    the callee, return back into the caller) on top of the static CFG
    edges, so the coverage experiments size their edge universe as
    ``edge_count + 2 * call_site_count``.
    """
    from repro.ir.instructions import Call

    count = 0
    for function in module.defined_functions():
        for inst in function.instructions():
            if isinstance(inst, Call):
                callee = inst.callee
                if isinstance(callee, Function) and not callee.is_declaration:
                    count += 1
    return count


def block_ids(module: Module) -> dict[BasicBlock, int]:
    """Assign a stable, deterministic integer id to every block."""
    ids: dict[BasicBlock, int] = {}
    next_id = 0
    for function in module.defined_functions():
        for block in function.blocks:
            ids[block] = next_id
            next_id += 1
    return ids


def _compute_topological_order(function: Function) -> list[BasicBlock]:
    order: list[BasicBlock] = []
    visited: set[BasicBlock] = set()

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        visited.add(block)
        while stack:
            current, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    if not function.is_declaration:
        visit(function.entry_block)
    order.reverse()
    return order


def topological_order(function: Function) -> list[BasicBlock]:
    """Reverse-post-order over the CFG (cached; loops broken arbitrarily)."""
    return _cached(function, "rpo", _compute_topological_order)  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# dominators
# ---------------------------------------------------------------------------


class DominatorTree:
    """Immediate-dominator tree of one function's reachable CFG.

    Built with the Cooper–Harvey–Kennedy iterative algorithm over the
    reverse post-order; ``dominates`` answers in O(1) via DFS intervals
    over the tree.  Unreachable blocks are not in the tree: they neither
    dominate nor are dominated by anything.
    """

    def __init__(self, function: Function):
        self.function = function
        rpo = topological_order(function)
        self._rpo_index = {b: i for i, b in enumerate(rpo)}
        self.idom: dict[BasicBlock, BasicBlock | None] = {}
        if rpo:
            self._build(rpo)
        self.children: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in rpo}
        for block, parent in self.idom.items():
            if parent is not None:
                self.children[parent].append(block)
        self._enter: dict[BasicBlock, int] = {}
        self._leave: dict[BasicBlock, int] = {}
        if rpo:
            self._number(rpo[0])

    def _build(self, rpo: list[BasicBlock]) -> None:
        entry = rpo[0]
        preds = predecessors(self.function)
        index = self._rpo_index
        idom: dict[BasicBlock, BasicBlock | None] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in rpo[1:]:
                new_idom: BasicBlock | None = None
                for pred in preds[block]:
                    if pred not in index or idom.get(pred) is None:
                        continue  # unreachable or not yet processed
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(idom, index, pred, new_idom)
                if new_idom is not None and idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        idom[entry] = None
        self.idom = idom

    @staticmethod
    def _intersect(idom, index, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    def _number(self, root: BasicBlock) -> None:
        clock = 0
        stack: list[tuple[BasicBlock, int]] = [(root, 0)]
        while stack:
            block, child_index = stack[-1]
            if child_index == 0:
                self._enter[block] = clock
                clock += 1
            kids = self.children[block]
            if child_index < len(kids):
                stack[-1] = (block, child_index + 1)
                stack.append((kids[child_index], 0))
            else:
                self._leave[block] = clock
                clock += 1
                stack.pop()

    # -- queries -------------------------------------------------------

    def is_reachable(self, block: BasicBlock) -> bool:
        return block in self._rpo_index

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True iff every entry→*b* path passes through *a* (reflexive)."""
        if a not in self._enter or b not in self._enter:
            return False
        return self._enter[a] <= self._enter[b] and self._leave[b] <= self._leave[a]

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def immediate_dominator(self, block: BasicBlock) -> BasicBlock | None:
        return self.idom.get(block)

    def depth(self, block: BasicBlock) -> int:
        depth = 0
        current = self.idom.get(block)
        while current is not None:
            depth += 1
            current = self.idom.get(current)
        return depth


def dominator_tree(function: Function) -> DominatorTree:
    """The function's dominator tree (cached; read-only)."""
    return _cached(function, "domtree", DominatorTree)  # type: ignore[return-value]


def _compute_frontiers(function: Function) -> dict[BasicBlock, set[BasicBlock]]:
    tree = dominator_tree(function)
    preds = predecessors(function)
    frontiers: dict[BasicBlock, set[BasicBlock]] = {
        b: set() for b in function.blocks if tree.is_reachable(b)
    }
    for block in function.blocks:
        if not tree.is_reachable(block):
            continue
        block_preds = [p for p in preds[block] if tree.is_reachable(p)]
        if len(block_preds) < 2:
            continue
        idom = tree.immediate_dominator(block)
        for pred in block_preds:
            runner = pred
            while runner is not idom and runner is not None:
                frontiers[runner].add(block)
                runner = tree.immediate_dominator(runner)
    return frontiers


def dominance_frontiers(function: Function) -> dict[BasicBlock, set[BasicBlock]]:
    """Dominance frontier of every reachable block (cached; read-only)."""
    return _cached(function, "frontiers", _compute_frontiers)  # type: ignore[return-value]
