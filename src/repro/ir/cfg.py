"""Control-flow-graph utilities over MiniIR functions.

Used by the verifier (reachability), the CoveragePass (edge
enumeration), and the experiments (edge-universe size for coverage
percentages, matching the paper's edge-coverage metric).
"""

from __future__ import annotations

from collections import deque

from repro.ir.module import BasicBlock, Function, Module

Edge = tuple[BasicBlock, BasicBlock]


def successors(block: BasicBlock) -> list[BasicBlock]:
    return block.successors()


def predecessors(function: Function) -> dict[BasicBlock, list[BasicBlock]]:
    preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            preds[succ].append(block)
    return preds


def reachable_blocks(function: Function) -> set[BasicBlock]:
    """Blocks reachable from the entry block."""
    if function.is_declaration:
        return set()
    seen: set[BasicBlock] = {function.entry_block}
    queue: deque[BasicBlock] = deque([function.entry_block])
    while queue:
        block = queue.popleft()
        for succ in block.successors():
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen


def function_edges(function: Function) -> list[Edge]:
    """All CFG edges of a function, in deterministic order."""
    edges: list[Edge] = []
    for block in function.blocks:
        for succ in block.successors():
            edges.append((block, succ))
    return edges


def module_edges(module: Module) -> list[Edge]:
    edges: list[Edge] = []
    for function in module.defined_functions():
        edges.extend(function_edges(function))
    return edges


def edge_count(module: Module) -> int:
    """Size of the static edge universe (denominator of edge coverage)."""
    return len(module_edges(module))


def call_site_count(module: Module) -> int:
    """Number of call instructions to *defined* functions.

    Each such call adds up to two dynamic edge-map pairs (entry into
    the callee, return back into the caller) on top of the static CFG
    edges, so the coverage experiments size their edge universe as
    ``edge_count + 2 * call_site_count``.
    """
    from repro.ir.instructions import Call

    count = 0
    for function in module.defined_functions():
        for inst in function.instructions():
            if isinstance(inst, Call):
                callee = inst.callee
                if isinstance(callee, Function) and not callee.is_declaration:
                    count += 1
    return count


def block_ids(module: Module) -> dict[BasicBlock, int]:
    """Assign a stable, deterministic integer id to every block."""
    ids: dict[BasicBlock, int] = {}
    next_id = 0
    for function in module.defined_functions():
        for block in function.blocks:
            ids[block] = next_id
            next_id += 1
    return ids


def topological_order(function: Function) -> list[BasicBlock]:
    """Reverse-post-order over the CFG (loops broken arbitrarily)."""
    order: list[BasicBlock] = []
    visited: set[BasicBlock] = set()

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        visited.add(block)
        while stack:
            current, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    if not function.is_declaration:
        visit(function.entry_block)
    order.reverse()
    return order
