"""Type system for MiniIR.

MiniIR is a small, typed, LLVM-flavoured intermediate representation.
Types are interned where practical so they can be compared with ``==``
and used as dictionary keys.  Every first-class type knows its size and
alignment in bytes, which the VM's byte-addressable memory model relies
on for loads, stores, and ``getelementptr`` offset computation.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable


class Type:
    """Base class for all MiniIR types."""

    def size(self) -> int:
        """Size of a value of this type in bytes."""
        raise NotImplementedError

    def alignment(self) -> int:
        """Required alignment of this type in bytes."""
        return max(1, self.size())

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} {self}>"


class VoidType(Type):
    """The type of functions that return nothing.  Not a value type."""

    _instance: "VoidType | None" = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def size(self) -> int:
        raise TypeError("void has no size")

    def __str__(self) -> str:
        return "void"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


class IntType(Type):
    """An integer type of a fixed bit width (i1, i8, i16, i32, i64).

    Values are stored in the VM as Python ints normalised to the
    unsigned range; signed interpretation happens per-operation, as in
    LLVM.
    """

    VALID_WIDTHS = (1, 8, 16, 32, 64)

    def __init__(self, bits: int):
        if bits not in self.VALID_WIDTHS:
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    def size(self) -> int:
        return max(1, self.bits // 8)

    @property
    def unsigned_max(self) -> int:
        return (1 << self.bits) - 1

    @property
    def signed_min(self) -> int:
        return -(1 << (self.bits - 1)) if self.bits > 1 else 0

    @property
    def signed_max(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 1

    def wrap(self, value: int) -> int:
        """Normalise *value* into this type's unsigned representation."""
        return value & self.unsigned_max

    def to_signed(self, value: int) -> int:
        """Interpret an unsigned representation as a signed value."""
        value &= self.unsigned_max
        if self.bits > 1 and value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value

    def __str__(self) -> str:
        return f"i{self.bits}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("int", self.bits))


class PointerType(Type):
    """A typed pointer.  Pointers are 8 bytes in the VM address space."""

    POINTER_SIZE = 8

    def __init__(self, pointee: Type):
        if isinstance(pointee, VoidType):
            # ``void*`` is modelled as ``i8*`` like clang does internally.
            pointee = int_type(8)
        self.pointee = pointee

    def size(self) -> int:
        return self.POINTER_SIZE

    def __str__(self) -> str:
        return f"{self.pointee}*"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))


class ArrayType(Type):
    """A fixed-length homogeneous array, e.g. ``[16 x i32]``."""

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    def size(self) -> int:
        return self.element.size() * self.count

    def alignment(self) -> int:
        return self.element.alignment()

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))


class StructType(Type):
    """A named or literal struct with C-like layout (padding included).

    Field offsets follow the usual C struct layout algorithm: each field
    is placed at the next offset aligned to its own alignment, and the
    total size is rounded up to the struct's alignment.
    """

    def __init__(self, name: str, fields: Iterable[tuple[str, Type]]):
        self.name = name
        self.fields: list[tuple[str, Type]] = list(fields)
        self._offsets: list[int] = []
        self._size = 0
        self._align = 1
        self._layout()

    def set_fields(self, fields: Iterable[tuple[str, "Type"]]) -> None:
        """Late field assignment, enabling self-referential structs
        (``struct Node { struct Node *next; }``): register the named
        struct first, then fill in the fields and recompute layout."""
        self.fields = list(fields)
        self._layout()

    def _layout(self) -> None:
        offset = 0
        align = 1
        self._offsets = []
        for _, ftype in self.fields:
            falign = ftype.alignment()
            align = max(align, falign)
            offset = _align_up(offset, falign)
            self._offsets.append(offset)
            offset += ftype.size()
        self._align = align
        self._size = _align_up(offset, align) if self.fields else 0

    def size(self) -> int:
        return self._size

    def alignment(self) -> int:
        return self._align

    def field_index(self, name: str) -> int:
        for i, (fname, _) in enumerate(self.fields):
            if fname == name:
                return i
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def field_offset(self, index: int) -> int:
        return self._offsets[index]

    def field_type(self, index: int) -> Type:
        return self.fields[index][1]

    def __str__(self) -> str:
        return f"%{self.name}"

    def describe(self) -> str:
        body = ", ".join(f"{t} {n}" for n, t in self.fields)
        return f"%{self.name} = type {{ {body} }}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))


class FunctionType(Type):
    """The type of a function: return type plus parameter types."""

    def __init__(self, return_type: Type, params: Iterable[Type], vararg: bool = False):
        self.return_type = return_type
        self.params: list[Type] = list(params)
        self.vararg = vararg

    def size(self) -> int:
        raise TypeError("function types have no size")

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.vararg:
            parts.append("...")
        return f"{self.return_type} ({', '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.params == self.params
            and other.vararg == self.vararg
        )

    def __hash__(self) -> int:
        return hash(("fn", self.return_type, tuple(self.params), self.vararg))


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


@lru_cache(maxsize=None)
def int_type(bits: int) -> IntType:
    """Interned accessor for integer types."""
    return IntType(bits)


@lru_cache(maxsize=None)
def pointer_type(pointee: Type) -> PointerType:
    """Interned accessor for pointer types."""
    return PointerType(pointee)


VOID = VoidType()
I1 = int_type(1)
I8 = int_type(8)
I16 = int_type(16)
I32 = int_type(32)
I64 = int_type(64)
I8_PTR = pointer_type(I8)
