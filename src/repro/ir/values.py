"""Core value hierarchy for MiniIR.

Every operand in MiniIR is a :class:`Value`.  Values that consume other
values (instructions, global initialisers) are :class:`User`\\ s and hold
their operands in an ordered list.  Def-use edges are tracked on every
value so that transformation passes can call
:meth:`Value.replace_all_uses_with` — the same primitive the paper's
LLVM passes use (``replaceAllUsesWith``) to redirect calls such as
``malloc`` to ClosureX's wrappers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.ir.types import IntType, PointerType, Type, int_type, pointer_type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.ir.module import Function


class Use:
    """One def-use edge: *user*'s operand number *index* is the used value."""

    __slots__ = ("user", "index")

    def __init__(self, user: "User", index: int):
        self.user = user
        self.index = index

    def __repr__(self) -> str:
        return f"<Use {self.user!r}[{self.index}]>"


class Value:
    """Base class for everything that can appear as an operand."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name
        self.uses: list[Use] = []

    def set_name(self, name: str) -> None:
        self.name = name

    def add_use(self, use: Use) -> None:
        self.uses.append(use)

    def remove_use(self, use: Use) -> None:
        self.uses.remove(use)

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    def users(self) -> Iterator["User"]:
        """Iterate over distinct users of this value."""
        seen: set[int] = set()
        for use in self.uses:
            if id(use.user) not in seen:
                seen.add(id(use.user))
                yield use.user

    def replace_all_uses_with(self, replacement: "Value") -> int:
        """Rewrite every use of ``self`` to use *replacement* instead.

        Returns the number of rewritten uses.  This is the MiniIR
        analogue of LLVM's ``replaceAllUsesWith``.
        """
        if replacement is self:
            return 0
        count = 0
        for use in list(self.uses):
            use.user.set_operand(use.index, replacement)
            count += 1
        return count

    def ref(self) -> str:
        """Short printable reference (e.g. ``%x`` or ``42``)."""
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} {self.ref()}: {self.type}>"


class User(Value):
    """A value that holds operands (instructions, constant expressions)."""

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(type_, name)
        self._operands: list[Value] = []
        self._uses_of_operands: list[Use] = []

    @property
    def operands(self) -> tuple[Value, ...]:
        return tuple(self._operands)

    def add_operand(self, value: Value) -> int:
        index = len(self._operands)
        use = Use(self, index)
        self._operands.append(value)
        self._uses_of_operands.append(use)
        value.add_use(use)
        return index

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        use = self._uses_of_operands[index]
        old.remove_use(use)
        self._operands[index] = value
        value.add_use(use)

    def get_operand(self, index: int) -> Value:
        return self._operands[index]

    def remove_operand(self, index: int) -> Value:
        """Remove operand *index*, re-indexing the remaining use edges.

        Every later :class:`Use` shifts down by one so ``use.index``
        always names the operand slot it occupies — the invariant the
        structural self-check in ``repro.analysis.opt`` relies on.
        Returns the removed value.
        """
        value = self._operands.pop(index)
        use = self._uses_of_operands.pop(index)
        value.remove_use(use)
        for later in self._uses_of_operands[index:]:
            later.index -= 1
        return value

    def drop_all_operands(self) -> None:
        """Detach this user from everything it references."""
        for value, use in zip(self._operands, self._uses_of_operands):
            value.remove_use(use)
        self._operands.clear()
        self._uses_of_operands.clear()

    @property
    def num_operands(self) -> int:
        return len(self._operands)


class Constant(Value):
    """Base class for compile-time constants."""

    def ref(self) -> str:  # pragma: no cover - overridden by subclasses
        return str(self)


class ConstantInt(Constant):
    """An integer constant, stored in unsigned representation."""

    def __init__(self, type_: IntType, value: int):
        super().__init__(type_)
        if not isinstance(type_, IntType):
            raise TypeError("ConstantInt requires an integer type")
        self.value = type_.wrap(value)

    @property
    def signed_value(self) -> int:
        assert isinstance(self.type, IntType)
        return self.type.to_signed(self.value)

    def ref(self) -> str:
        return str(self.signed_value)

    def __str__(self) -> str:
        return f"{self.type} {self.signed_value}"


class ConstantNull(Constant):
    """The null pointer constant for a given pointer type."""

    def __init__(self, type_: PointerType):
        super().__init__(type_)

    def ref(self) -> str:
        return "null"

    def __str__(self) -> str:
        return f"{self.type} null"


class UndefValue(Constant):
    """An undefined value (reads as zero in the VM, flagged in strict mode)."""

    def ref(self) -> str:
        return "undef"

    def __str__(self) -> str:
        return f"{self.type} undef"


class ConstantData(Constant):
    """Raw bytes used as a global initializer (strings, tables)."""

    def __init__(self, type_: Type, data: bytes):
        super().__init__(type_)
        if len(data) != type_.size():
            raise ValueError(
                f"initializer size {len(data)} does not match type size {type_.size()}"
            )
        self.data = bytes(data)

    def ref(self) -> str:
        return f'c"{self.data.hex()}"'

    def __str__(self) -> str:
        return f"{self.type} {self.ref()}"


class ZeroInitializer(Constant):
    """A zero-filled initializer of the given type (``.bss``-style data)."""

    def ref(self) -> str:
        return "zeroinitializer"

    def __str__(self) -> str:
        return f"{self.type} zeroinitializer"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, function: "Function | None" = None, index: int = 0):
        super().__init__(type_, name)
        self.function = function
        self.index = index


class GlobalValue(Value):
    """Base for module-level symbols: globals and functions."""

    def __init__(self, type_: Type, name: str):
        super().__init__(type_, name)
        self.section: str = ""

    def set_section(self, section: str) -> None:
        """Assign this symbol to a named binary section.

        Mirrors LLVM's ``GlobalObject::setSection``, which ClosureX's
        GlobalPass uses to move writable globals into
        ``closure_global_section``.
        """
        self.section = section

    def ref(self) -> str:
        return f"@{self.name}"


class GlobalVariable(GlobalValue):
    """A module-level variable.

    ``type`` is the pointer type (globals are used through their
    address, as in LLVM); ``value_type`` is the type of the stored data.
    ``is_constant`` distinguishes immutable data (string literals,
    lookup tables) from mutable program state — the property the
    GlobalPass keys off via ``isConstant()``.
    """

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer: Constant | None = None,
        is_constant: bool = False,
        section: str = "",
    ):
        super().__init__(pointer_type(value_type), name)
        self.value_type = value_type
        self.initializer = initializer if initializer is not None else ZeroInitializer(value_type)
        self.is_constant = is_constant
        self.section = section or (".rodata" if is_constant else self._default_section())

    def _default_section(self) -> str:
        if isinstance(self.initializer, ZeroInitializer):
            return ".bss"
        return ".data"

    def initial_bytes(self) -> bytes:
        """Concrete initial byte image for the VM loader."""
        init = self.initializer
        size = self.value_type.size()
        if isinstance(init, ZeroInitializer):
            return bytes(size)
        if isinstance(init, ConstantData):
            return init.data
        if isinstance(init, ConstantInt):
            return init.value.to_bytes(size, "little")
        if isinstance(init, ConstantNull):
            return bytes(size)
        raise TypeError(f"unsupported global initializer: {init!r}")

    def __str__(self) -> str:
        kind = "constant" if self.is_constant else "global"
        sect = f', section "{self.section}"' if self.section else ""
        return f"@{self.name} = {kind} {self.value_type} {self.initializer.ref()}{sect}"


def const_int(bits: int, value: int) -> ConstantInt:
    """Convenience constructor for integer constants."""
    return ConstantInt(int_type(bits), value)


def const_i32(value: int) -> ConstantInt:
    return const_int(32, value)


def const_i64(value: int) -> ConstantInt:
    return const_int(64, value)


def const_i8(value: int) -> ConstantInt:
    return const_int(8, value)


def null_ptr(pointee: Type) -> ConstantNull:
    return ConstantNull(pointer_type(pointee))
