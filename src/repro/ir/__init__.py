"""MiniIR: a small, typed, LLVM-flavoured compiler IR.

Public surface:

- type constructors (:func:`int_type`, :func:`pointer_type`, ...)
- value/constant classes and :class:`Module`/:class:`Function`/:class:`BasicBlock`
- :class:`IRBuilder` for construction
- :func:`verify_module` and :func:`print_module`
"""

from repro.ir.builder import IRBuilder
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.printer import print_function, print_module
from repro.ir.types import (
    I1,
    I8,
    I8_PTR,
    I16,
    I32,
    I64,
    VOID,
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
    int_type,
    pointer_type,
)
from repro.ir.values import (
    Argument,
    Constant,
    ConstantData,
    ConstantInt,
    ConstantNull,
    GlobalValue,
    GlobalVariable,
    UndefValue,
    Use,
    User,
    Value,
    ZeroInitializer,
    const_i8,
    const_i32,
    const_i64,
    const_int,
    null_ptr,
)
from repro.ir.parser import IRParseError, parse_module
from repro.ir.verifier import VerificationError, verify_module

__all__ = [
    "IRBuilder",
    "Alloca", "BinOp", "Br", "Call", "Cast", "CondBr", "GetElementPtr",
    "ICmp", "Instruction", "Load", "Phi", "Ret", "Select", "Store",
    "Switch", "Unreachable",
    "BasicBlock", "Function", "Module",
    "print_function", "print_module",
    "I1", "I8", "I8_PTR", "I16", "I32", "I64", "VOID",
    "ArrayType", "FunctionType", "IntType", "PointerType", "StructType",
    "Type", "VoidType", "int_type", "pointer_type",
    "Argument", "Constant", "ConstantData", "ConstantInt", "ConstantNull",
    "GlobalValue", "GlobalVariable", "UndefValue", "Use", "User", "Value",
    "ZeroInitializer", "const_i8", "const_i32", "const_i64", "const_int",
    "null_ptr",
    "IRParseError", "parse_module",
    "VerificationError", "verify_module",
]
