"""Instruction set of MiniIR.

The instruction set is deliberately close to the subset of LLVM IR that
clang emits at ``-O0`` for C programs: arithmetic/bitwise binary ops,
integer comparisons, stack allocation, typed loads/stores,
``getelementptr`` address computation, calls, casts, and structured
control flow (``br``, conditional ``br``, ``switch``, ``ret``).  Phi
nodes exist for completeness but front-ends may use alloca/load/store
form instead, exactly as unoptimised clang output does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.ir.types import (
    ArrayType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
    int_type,
    pointer_type,
)
from repro.ir.values import ConstantInt, User, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import BasicBlock, Function


BINARY_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "sdiv",
        "udiv",
        "srem",
        "urem",
        "and",
        "or",
        "xor",
        "shl",
        "lshr",
        "ashr",
    }
)

ICMP_PREDICATES = frozenset(
    {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
)

CAST_OPS = frozenset({"trunc", "zext", "sext", "bitcast", "ptrtoint", "inttoptr"})


class Instruction(User):
    """Base class for all instructions.

    ``parent`` is the containing basic block, set on insertion.  The
    subset of instructions that end a block report ``is_terminator``.
    """

    opcode = "<abstract>"
    is_terminator = False

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(type_, name)
        self.parent: "BasicBlock | None" = None

    @property
    def function(self) -> "Function | None":
        return self.parent.parent if self.parent is not None else None

    def erase_from_parent(self) -> None:
        """Remove this instruction from its block and drop its operands."""
        if self.parent is None:
            raise ValueError("instruction has no parent block")
        self.parent.remove_instruction(self)
        self.drop_all_operands()

    def operand_refs(self) -> str:
        return ", ".join(op.ref() for op in self.operands)

    def __str__(self) -> str:
        if isinstance(self.type, VoidType):
            return f"{self.opcode} {self.operand_refs()}"
        return f"{self.ref()} = {self.opcode} {self.type} {self.operand_refs()}"


class BinOp(Instruction):
    """Two-operand arithmetic or bitwise instruction."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        if lhs.type != rhs.type or not isinstance(lhs.type, IntType):
            raise TypeError(f"binop operands must share an integer type: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, name)
        self.op = op
        self.add_operand(lhs)
        self.add_operand(rhs)

    opcode = "binop"

    @property
    def lhs(self) -> Value:
        return self.get_operand(0)

    @property
    def rhs(self) -> Value:
        return self.get_operand(1)

    def __str__(self) -> str:
        return f"{self.ref()} = {self.op} {self.type} {self.lhs.ref()}, {self.rhs.ref()}"


class ICmp(Instruction):
    """Integer / pointer comparison producing an ``i1``."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise TypeError(f"icmp operands must share a type: {lhs.type} vs {rhs.type}")
        super().__init__(int_type(1), name)
        self.predicate = predicate
        self.add_operand(lhs)
        self.add_operand(rhs)

    @property
    def lhs(self) -> Value:
        return self.get_operand(0)

    @property
    def rhs(self) -> Value:
        return self.get_operand(1)

    def __str__(self) -> str:
        return (
            f"{self.ref()} = icmp {self.predicate} {self.lhs.type} "
            f"{self.lhs.ref()}, {self.rhs.ref()}"
        )


class Alloca(Instruction):
    """Reserve stack storage in the current frame; yields a pointer."""

    opcode = "alloca"

    def __init__(self, allocated_type: Type, count: int = 1, name: str = ""):
        super().__init__(pointer_type(allocated_type), name)
        self.allocated_type = allocated_type
        self.count = count

    def allocation_size(self) -> int:
        return self.allocated_type.size() * self.count

    def __str__(self) -> str:
        suffix = f", {self.count}" if self.count != 1 else ""
        return f"{self.ref()} = alloca {self.allocated_type}{suffix}"


class Load(Instruction):
    """Load a value of the pointee type from a pointer."""

    opcode = "load"

    def __init__(self, ptr: Value, name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"load requires a pointer operand, got {ptr.type}")
        super().__init__(ptr.type.pointee, name)
        self.add_operand(ptr)

    @property
    def ptr(self) -> Value:
        return self.get_operand(0)

    def __str__(self) -> str:
        return f"{self.ref()} = load {self.type}, {self.ptr.type} {self.ptr.ref()}"


class Store(Instruction):
    """Store a value through a pointer.  Produces no result."""

    opcode = "store"

    def __init__(self, value: Value, ptr: Value):
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"store requires a pointer destination, got {ptr.type}")
        if ptr.type.pointee != value.type:
            raise TypeError(f"store type mismatch: {value.type} into {ptr.type}")
        super().__init__(VoidType())
        self.add_operand(value)
        self.add_operand(ptr)

    @property
    def value(self) -> Value:
        return self.get_operand(0)

    @property
    def ptr(self) -> Value:
        return self.get_operand(1)

    def __str__(self) -> str:
        return f"store {self.value.type} {self.value.ref()}, {self.ptr.type} {self.ptr.ref()}"


class GetElementPtr(Instruction):
    """Address arithmetic over typed memory, following LLVM GEP rules.

    The first index scales by the size of the pointee; each subsequent
    index steps into an aggregate (array element or struct field).  The
    result type is a pointer to the final navigated type.  Struct
    indices must be integer constants, as in LLVM.
    """

    opcode = "getelementptr"

    def __init__(self, base: Value, indices: Sequence[Value], name: str = ""):
        if not isinstance(base.type, PointerType):
            raise TypeError(f"GEP base must be a pointer, got {base.type}")
        if not indices:
            raise ValueError("GEP requires at least one index")
        result_pointee = self._navigate(base.type.pointee, indices)
        super().__init__(pointer_type(result_pointee), name)
        self.add_operand(base)
        for index in indices:
            if not isinstance(index.type, IntType):
                raise TypeError(f"GEP index must be an integer, got {index.type}")
            self.add_operand(index)

    @staticmethod
    def _navigate(pointee: Type, indices: Sequence[Value]) -> Type:
        current = pointee
        for index in indices[1:]:
            if isinstance(current, ArrayType):
                current = current.element
            elif isinstance(current, StructType):
                if not isinstance(index, ConstantInt):
                    raise TypeError("struct GEP index must be a constant int")
                current = current.field_type(index.value)
            else:
                raise TypeError(f"cannot index into non-aggregate type {current}")
        return current

    @property
    def base(self) -> Value:
        return self.get_operand(0)

    @property
    def indices(self) -> tuple[Value, ...]:
        return self.operands[1:]

    def __str__(self) -> str:
        idx = ", ".join(f"{i.type} {i.ref()}" for i in self.indices)
        base_ty = self.base.type
        assert isinstance(base_ty, PointerType)
        return (
            f"{self.ref()} = getelementptr {base_ty.pointee}, "
            f"{base_ty} {self.base.ref()}, {idx}"
        )


class Call(Instruction):
    """Call a function (direct symbol reference) with argument values.

    The callee is an operand, so passes can retarget calls with
    ``replace_all_uses_with`` on the callee symbol — the mechanism
    ClosureX's Heap/File/Exit passes rely on.
    """

    opcode = "call"

    def __init__(self, callee: Value, args: Sequence[Value], name: str = ""):
        from repro.ir.module import Function  # local import to avoid cycle

        if not isinstance(callee, Function):
            raise TypeError("call currently supports direct callees only")
        ftype = callee.function_type
        if not ftype.vararg and len(args) != len(ftype.params):
            raise TypeError(
                f"call to @{callee.name} expects {len(ftype.params)} args, got {len(args)}"
            )
        for i, (arg, pty) in enumerate(zip(args, ftype.params)):
            if arg.type != pty:
                raise TypeError(
                    f"call to @{callee.name}: arg {i} has type {arg.type}, expected {pty}"
                )
        super().__init__(ftype.return_type, name)
        self.add_operand(callee)
        for arg in args:
            self.add_operand(arg)

    @property
    def callee(self) -> Value:
        return self.get_operand(0)

    @property
    def args(self) -> tuple[Value, ...]:
        return self.operands[1:]

    def __str__(self) -> str:
        arglist = ", ".join(f"{a.type} {a.ref()}" for a in self.args)
        if isinstance(self.type, VoidType):
            return f"call void {self.callee.ref()}({arglist})"
        return f"{self.ref()} = call {self.type} {self.callee.ref()}({arglist})"


class Cast(Instruction):
    """Width and representation changes between integer/pointer types."""

    opcode = "cast"

    def __init__(self, op: str, value: Value, to_type: Type, name: str = ""):
        if op not in CAST_OPS:
            raise ValueError(f"unknown cast op {op!r}")
        self._check(op, value.type, to_type)
        super().__init__(to_type, name)
        self.op = op
        self.add_operand(value)

    @staticmethod
    def _check(op: str, from_type: Type, to_type: Type) -> None:
        if op in ("trunc", "zext", "sext"):
            if not isinstance(from_type, IntType) or not isinstance(to_type, IntType):
                raise TypeError(f"{op} requires integer types")
            if op == "trunc" and from_type.bits <= to_type.bits:
                raise TypeError("trunc must narrow")
            if op in ("zext", "sext") and from_type.bits >= to_type.bits:
                raise TypeError(f"{op} must widen")
        elif op == "bitcast":
            if not isinstance(from_type, PointerType) or not isinstance(to_type, PointerType):
                raise TypeError("bitcast supports pointer-to-pointer only")
        elif op == "ptrtoint":
            if not isinstance(from_type, PointerType) or not isinstance(to_type, IntType):
                raise TypeError("ptrtoint requires pointer -> integer")
        elif op == "inttoptr":
            if not isinstance(from_type, IntType) or not isinstance(to_type, PointerType):
                raise TypeError("inttoptr requires integer -> pointer")

    @property
    def value(self) -> Value:
        return self.get_operand(0)

    def __str__(self) -> str:
        return (
            f"{self.ref()} = {self.op} {self.value.type} {self.value.ref()} to {self.type}"
        )


class Select(Instruction):
    """``select i1 %c, T %a, T %b`` — branchless conditional value."""

    opcode = "select"

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = ""):
        if cond.type != int_type(1):
            raise TypeError("select condition must be i1")
        if if_true.type != if_false.type:
            raise TypeError("select arms must share a type")
        super().__init__(if_true.type, name)
        self.add_operand(cond)
        self.add_operand(if_true)
        self.add_operand(if_false)

    @property
    def cond(self) -> Value:
        return self.get_operand(0)

    @property
    def if_true(self) -> Value:
        return self.get_operand(1)

    @property
    def if_false(self) -> Value:
        return self.get_operand(2)

    def __str__(self) -> str:
        return (
            f"{self.ref()} = select i1 {self.cond.ref()}, {self.type} "
            f"{self.if_true.ref()}, {self.type} {self.if_false.ref()}"
        )


class Phi(Instruction):
    """SSA phi node.  Incoming blocks are recorded alongside operands."""

    opcode = "phi"

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(type_, name)
        self.incoming_blocks: list["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise TypeError(f"phi incoming type {value.type} != {self.type}")
        self.add_operand(value)
        self.incoming_blocks.append(block)

    def remove_incoming(self, block: "BasicBlock") -> int:
        """Drop every incoming arm for *block*; returns arms removed.

        Used by CFG-mutating transforms after deleting an edge or an
        entire predecessor block, so the verifier's phi/predecessor
        agreement check keeps holding.
        """
        removed = 0
        for i in range(len(self.incoming_blocks) - 1, -1, -1):
            if self.incoming_blocks[i] is block:
                self.remove_operand(i)
                self.incoming_blocks.pop(i)
                removed += 1
        return removed

    def incoming(self) -> list[tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def value_for_block(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming():
            if pred is block:
                return value
        raise KeyError(f"phi has no incoming value for block {block.name}")

    def __str__(self) -> str:
        arms = ", ".join(f"[ {v.ref()}, %{b.name} ]" for v, b in self.incoming())
        return f"{self.ref()} = phi {self.type} {arms}"


class Br(Instruction):
    """Unconditional branch.

    ``target`` is a property whose setter bumps the parent function's
    ``cfg_epoch``: retargeting a branch in place is a CFG mutation the
    block-level hooks cannot see, and a stale dominator tree after such
    an edit would silently miscompile the optimizer's next query.
    """

    opcode = "br"
    is_terminator = True

    def __init__(self, target: "BasicBlock"):
        super().__init__(VoidType())
        self._target = target

    @property
    def target(self) -> "BasicBlock":
        return self._target

    @target.setter
    def target(self, block: "BasicBlock") -> None:
        self._target = block
        if self.parent is not None:
            self.parent._touch_cfg()

    def successors(self) -> list["BasicBlock"]:
        return [self._target]

    def __str__(self) -> str:
        return f"br label %{self.target.name}"


class CondBr(Instruction):
    """Two-way conditional branch on an ``i1``.

    Like :class:`Br`, the target attributes are epoch-bumping
    properties so in-place retargeting invalidates cached CFG facts.
    """

    opcode = "condbr"
    is_terminator = True

    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock"):
        if cond.type != int_type(1):
            raise TypeError("conditional branch requires an i1 condition")
        super().__init__(VoidType())
        self.add_operand(cond)
        self._if_true = if_true
        self._if_false = if_false

    @property
    def cond(self) -> Value:
        return self.get_operand(0)

    @property
    def if_true(self) -> "BasicBlock":
        return self._if_true

    @if_true.setter
    def if_true(self, block: "BasicBlock") -> None:
        self._if_true = block
        if self.parent is not None:
            self.parent._touch_cfg()

    @property
    def if_false(self) -> "BasicBlock":
        return self._if_false

    @if_false.setter
    def if_false(self, block: "BasicBlock") -> None:
        self._if_false = block
        if self.parent is not None:
            self.parent._touch_cfg()

    def successors(self) -> list["BasicBlock"]:
        return [self._if_true, self._if_false]

    def __str__(self) -> str:
        return (
            f"br i1 {self.cond.ref()}, label %{self.if_true.name}, "
            f"label %{self.if_false.name}"
        )


class Switch(Instruction):
    """Multi-way branch on an integer value."""

    opcode = "switch"
    is_terminator = True

    def __init__(self, value: Value, default: "BasicBlock"):
        if not isinstance(value.type, IntType):
            raise TypeError("switch requires an integer operand")
        super().__init__(VoidType())
        self.add_operand(value)
        self._default = default
        self.cases: list[tuple[int, "BasicBlock"]] = []

    @property
    def value(self) -> Value:
        return self.get_operand(0)

    @property
    def default(self) -> "BasicBlock":
        return self._default

    @default.setter
    def default(self, block: "BasicBlock") -> None:
        self._default = block
        if self.parent is not None:
            self.parent._touch_cfg()

    def add_case(self, const: int, block: "BasicBlock") -> None:
        assert isinstance(self.value.type, IntType)
        self.cases.append((self.value.type.wrap(const), block))

    def retarget_successor(self, old: "BasicBlock", new: "BasicBlock") -> int:
        """Rewrite every edge to *old* (default or case) to point at
        *new*; returns edges rewritten.  Bumps the CFG epoch."""
        rewritten = 0
        if self._default is old:
            self._default = new
            rewritten += 1
        for i, (const, block) in enumerate(self.cases):
            if block is old:
                self.cases[i] = (const, new)
                rewritten += 1
        if rewritten and self.parent is not None:
            self.parent._touch_cfg()
        return rewritten

    def successors(self) -> list["BasicBlock"]:
        return [self._default] + [b for _, b in self.cases]

    def __str__(self) -> str:
        body = " ".join(
            f"{self.value.type} {c}, label %{b.name}" for c, b in self.cases
        )
        return (
            f"switch {self.value.type} {self.value.ref()}, "
            f"label %{self.default.name} [ {body} ]"
        )


class Ret(Instruction):
    """Return from the current function, optionally with a value."""

    opcode = "ret"
    is_terminator = True

    def __init__(self, value: Value | None = None):
        super().__init__(VoidType())
        if value is not None:
            self.add_operand(value)

    @property
    def value(self) -> Value | None:
        return self.get_operand(0) if self.num_operands else None

    def successors(self) -> list["BasicBlock"]:
        return []

    def __str__(self) -> str:
        if self.value is None:
            return "ret void"
        return f"ret {self.value.type} {self.value.ref()}"


class Unreachable(Instruction):
    """Marks a point control flow must never reach (traps in the VM)."""

    opcode = "unreachable"
    is_terminator = True

    def __init__(self) -> None:
        super().__init__(VoidType())

    def successors(self) -> list["BasicBlock"]:
        return []

    def __str__(self) -> str:
        return "unreachable"
