"""Structural verifier for MiniIR modules.

Passes are required to leave modules in a verifiable state; the test
suite runs the verifier after every transformation, which is how we
catch pass bugs early (LLVM's ``-verify`` discipline).

Two strictness levels:

- **structural** (always on): symbol-table consistency, terminator
  placement, phi/predecessor agreement, operand sanity, and a linear
  layout-order use-before-def check.
- **strict SSA** (``strict_ssa=True``): every value defined in a block
  must *dominate* each of its uses — the real SSA invariant, checked
  with the cached dominator tree from :mod:`repro.ir.cfg`.  Phi uses
  are checked at the end of the corresponding incoming edge, as in
  LLVM.  The pass manager enables this by default, so every pipeline
  run in the tests enforces defs-dominate-uses.
"""

from __future__ import annotations

from repro.ir import cfg
from repro.ir.instructions import Call, Instruction, Phi
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Argument, Constant, GlobalValue, Value


class VerificationError(Exception):
    """Raised when a module violates MiniIR structural invariants."""

    def __init__(self, errors: list[str]):
        self.errors = errors
        super().__init__("; ".join(errors))


class Verifier:
    """Collects structural errors over a module."""

    def __init__(self, module: Module, strict_ssa: bool = False):
        self.module = module
        self.strict_ssa = strict_ssa
        self.errors: list[str] = []

    def error(self, message: str) -> None:
        self.errors.append(message)

    def run(self) -> list[str]:
        self._check_symbols()
        for function in self.module.defined_functions():
            self._check_function(function)
        return self.errors

    # -- module level ---------------------------------------------------

    def _check_symbols(self) -> None:
        for name, func in self.module.functions.items():
            if func.name != name:
                self.error(f"function table key {name!r} != function name {func.name!r}")
        for name, var in self.module.globals.items():
            if var.name != name:
                self.error(f"global table key {name!r} != global name {var.name!r}")
            if var.is_constant and var.section == "closure_global_section":
                self.error(f"constant global @{name} placed in closure_global_section")

    # -- function level ---------------------------------------------------

    def _check_function(self, function: Function) -> None:
        where = f"@{function.name}"
        if len(function.args) != len(function.function_type.params):
            self.error(f"{where}: has {len(function.args)} args for "
                       f"{len(function.function_type.params)} params")
        if not function.blocks:
            return
        names = [b.name for b in function.blocks]
        if len(set(names)) != len(names):
            self.error(f"{where}: duplicate block names")

        defined: set[int] = {id(a) for a in function.args}
        preds = cfg.predecessors(function)
        for block in function.blocks:
            self._check_block(function, block, defined, preds)
        if self.strict_ssa:
            self._check_dominance(function)

    def _check_block(self, function, block, defined: set[int], preds) -> None:
        where = f"@{function.name}:%{block.name}"
        if not block.instructions:
            self.error(f"{where}: empty block")
            return
        term = block.instructions[-1]
        if not term.is_terminator:
            self.error(f"{where}: missing terminator")
        for i, inst in enumerate(block.instructions):
            if inst.is_terminator and i != len(block.instructions) - 1:
                self.error(f"{where}: terminator in the middle of the block")
            if inst.parent is not block:
                self.error(f"{where}: instruction parent link broken: {inst}")
            if isinstance(inst, Phi):
                self._check_phi(where, block, inst, preds)
                if i > 0 and not isinstance(block.instructions[i - 1], Phi):
                    self.error(f"{where}: phi not grouped at block start")
            self._check_operands(where, inst, defined)
            if not inst.type.is_void:
                defined.add(id(inst))

    def _check_phi(self, where: str, block, phi: Phi, preds) -> None:
        incoming_blocks = {id(b) for b in phi.incoming_blocks}
        pred_blocks = {id(b) for b in preds[block]}
        if incoming_blocks != pred_blocks:
            self.error(f"{where}: phi incoming blocks do not match predecessors")

    def _check_operands(self, where: str, inst: Instruction, defined: set[int]) -> None:
        for index, op in enumerate(inst.operands):
            if isinstance(op, (Constant, GlobalValue, Argument)):
                continue
            if isinstance(op, Instruction):
                if id(op) not in defined and not isinstance(inst, Phi):
                    self.error(
                        f"{where}: operand {index} of '{inst}' used before definition"
                    )
                if op.parent is None:
                    self.error(f"{where}: operand {index} of '{inst}' is detached")
                continue
            self.error(f"{where}: unexpected operand kind {type(op).__name__}")
        if isinstance(inst, Call):
            callee = inst.callee
            if isinstance(callee, Function) and callee.module is not None:
                if callee.module.functions.get(callee.name) is not callee:
                    self.error(
                        f"{where}: call to @{callee.name} not registered in its module"
                    )

    # -- strict SSA: defs must dominate uses -----------------------------

    def _check_dominance(self, function: Function) -> None:
        tree = cfg.dominator_tree(function)
        position: dict[int, int] = {}
        for block in function.blocks:
            for i, inst in enumerate(block.instructions):
                position[id(inst)] = i
        for block in function.blocks:
            if not tree.is_reachable(block):
                continue
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    self._check_phi_dominance(function, tree, position, block, inst)
                    continue
                for index, op in enumerate(inst.operands):
                    if not isinstance(op, Instruction):
                        continue
                    if not self._def_dominates_use(tree, position, op, inst):
                        self.error(
                            f"@{function.name}:%{block.name}: operand {index} of "
                            f"'{inst}' is not dominated by its definition "
                            f"'{op.ref()}'"
                        )

    def _check_phi_dominance(self, function: Function, tree, position,
                             block: BasicBlock, phi: Phi) -> None:
        # A phi use is a use at the *end* of the incoming edge: the
        # definition must dominate the incoming block's terminator.
        for value, pred in phi.incoming():
            if not isinstance(value, Instruction):
                continue
            def_block = value.parent
            if def_block is None or not tree.dominates(def_block, pred):
                self.error(
                    f"@{function.name}:%{block.name}: phi '{phi.ref()}' incoming "
                    f"value '{value.ref()}' from %{pred.name} is not dominated "
                    f"by its definition"
                )

    @staticmethod
    def _def_dominates_use(tree, position, definition: Instruction,
                           use: Instruction) -> bool:
        def_block = definition.parent
        use_block = use.parent
        if def_block is None or use_block is None:
            return False
        if def_block is use_block:
            return position[id(definition)] < position[id(use)]
        return tree.strictly_dominates(def_block, use_block)


def verify_module(module: Module, strict_ssa: bool = False) -> None:
    """Raise :class:`VerificationError` if *module* is malformed.

    With ``strict_ssa=True`` the verifier additionally enforces the SSA
    dominance invariant (defs dominate uses) over reachable blocks.
    """
    errors = Verifier(module, strict_ssa=strict_ssa).run()
    if errors:
        raise VerificationError(errors)
