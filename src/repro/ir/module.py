"""Modules, functions, and basic blocks for MiniIR.

A :class:`Module` is the unit of compilation, linking, and pass
execution: it owns global variables (with named sections), declared and
defined functions, and named struct types.  Transformation passes
operate module- or function-at-a-time, mirroring LLVM's ModulePass /
FunctionPass split.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.ir.instructions import Instruction
from repro.ir.types import FunctionType, StructType, Type
from repro.ir.values import Argument, Constant, GlobalValue, GlobalVariable


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: "Function | None" = None):
        self.name = name
        self.parent = parent
        self.instructions: list[Instruction] = []

    def _touch_cfg(self) -> None:
        if self.parent is not None:
            self.parent.invalidate_cfg()

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(f"block {self.name} is already terminated")
        inst.parent = self
        self.instructions.append(inst)
        self._touch_cfg()
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        self._touch_cfg()
        return inst

    def remove_instruction(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None
        self._touch_cfg()

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []  # type: ignore[attr-defined]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock %{self.name} ({len(self.instructions)} insts)>"


class Function(GlobalValue):
    """A function definition or declaration.

    Declarations (``is_declaration == True``) have no blocks; the VM
    resolves them against its libc/intrinsic table at call time, which
    is how ``malloc``/``fopen``/``exit`` and the ClosureX runtime hooks
    are modelled.
    """

    def __init__(self, name: str, function_type: FunctionType, module: "Module | None" = None):
        super().__init__(function_type, name)
        self.function_type = function_type
        self.module = module
        self.blocks: list[BasicBlock] = []
        self.args: list[Argument] = []
        self._next_value_id = 0
        self._next_block_id = 0
        #: Monotonic mutation counter.  Any structural change (block or
        #: instruction insertion/removal) bumps it; ``repro.ir.cfg``
        #: keys its per-function caches on this, so derived CFG facts
        #: (predecessors, reachability, dominators) are recomputed only
        #: after a real mutation.
        self.cfg_epoch = 0

    def invalidate_cfg(self) -> None:
        """Invalidate cached CFG-derived analyses for this function.

        Called automatically by block/instruction mutation; call it
        explicitly after retargeting a terminator in place (e.g.
        assigning ``br.target``), which the IR cannot observe.
        """
        self.cfg_epoch += 1

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def return_type(self) -> Type:
        return self.function_type.return_type

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"@{self.name} is a declaration; it has no entry block")
        return self.blocks[0]

    def add_arg(self, name: str) -> Argument:
        index = len(self.args)
        if index >= len(self.function_type.params):
            raise ValueError(f"@{self.name} has only {len(self.function_type.params)} params")
        arg = Argument(self.function_type.params[index], name, self, index)
        self.args.append(arg)
        return arg

    def ensure_args(self, names: Iterable[str] = ()) -> list[Argument]:
        """Create any missing Argument objects, using *names* if given."""
        provided = list(names)
        while len(self.args) < len(self.function_type.params):
            index = len(self.args)
            name = provided[index] if index < len(provided) else f"arg{index}"
            self.add_arg(name)
        return self.args

    def append_block(self, name: str = "") -> BasicBlock:
        block = BasicBlock(self._unique_block_name(name), self)
        self.blocks.append(block)
        self.invalidate_cfg()
        return block

    def insert_block_after(self, existing: BasicBlock, name: str = "") -> BasicBlock:
        block = BasicBlock(self._unique_block_name(name), self)
        self.blocks.insert(self.blocks.index(existing) + 1, block)
        self.invalidate_cfg()
        return block

    def remove_block(self, block: BasicBlock) -> BasicBlock:
        """Detach *block* from this function, bumping the CFG epoch.

        The caller is responsible for the block's contents: remaining
        instructions keep their operand uses until dropped, and any
        terminator elsewhere still targeting the block leaves the CFG
        inconsistent.  Removing the entry block is refused — every
        function needs one.
        """
        if block is self.blocks[0]:
            raise ValueError(f"cannot remove entry block %{block.name}")
        self.blocks.remove(block)
        block.parent = None
        self.invalidate_cfg()
        return block

    def _unique_block_name(self, hint: str) -> str:
        if not hint:
            return self.next_block_name()
        used = {b.name for b in self.blocks}
        if hint not in used:
            return hint
        self._next_block_id += 1
        return f"{hint}.{self._next_block_id}"

    def get_block(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"@{self.name} has no block %{name}")

    def next_value_name(self, hint: str = "") -> str:
        self._next_value_id += 1
        base = hint or "v"
        return f"{base}{self._next_value_id}"

    def next_block_name(self, hint: str = "bb") -> str:
        self._next_block_id += 1
        return f"{hint}{self._next_block_id}"

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} @{self.name}: {self.function_type}>"


class Module:
    """A MiniIR compilation unit: globals, functions, struct types."""

    def __init__(self, name: str):
        self.name = name
        self.globals: dict[str, GlobalVariable] = {}
        self.functions: dict[str, Function] = {}
        self.structs: dict[str, StructType] = {}
        self.metadata: dict[str, str] = {}

    # -- struct types -------------------------------------------------

    def add_struct(self, struct: StructType) -> StructType:
        if struct.name in self.structs:
            raise ValueError(f"duplicate struct %{struct.name}")
        self.structs[struct.name] = struct
        return struct

    def get_struct(self, name: str) -> StructType:
        return self.structs[name]

    # -- globals ------------------------------------------------------

    def add_global(
        self,
        name: str,
        value_type: Type,
        initializer: Constant | None = None,
        is_constant: bool = False,
        section: str = "",
    ) -> GlobalVariable:
        if name in self.globals or name in self.functions:
            raise ValueError(f"duplicate symbol @{name}")
        var = GlobalVariable(name, value_type, initializer, is_constant, section)
        self.globals[name] = var
        return var

    def get_global(self, name: str) -> GlobalVariable:
        return self.globals[name]

    def globals_in_section(self, section: str) -> list[GlobalVariable]:
        return [g for g in self.globals.values() if g.section == section]

    # -- functions ----------------------------------------------------

    def add_function(self, name: str, function_type: FunctionType) -> Function:
        if name in self.functions or name in self.globals:
            raise ValueError(f"duplicate symbol @{name}")
        func = Function(name, function_type, self)
        self.functions[name] = func
        return func

    def declare_function(self, name: str, function_type: FunctionType) -> Function:
        """Add (or fetch) a declaration, e.g. a libc or runtime hook."""
        existing = self.functions.get(name)
        if existing is not None:
            if existing.function_type != function_type:
                raise ValueError(f"conflicting declaration for @{name}")
            return existing
        return self.add_function(name, function_type)

    def get_function(self, name: str) -> Function:
        return self.functions[name]

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def rename_function(self, function: Function, new_name: str) -> None:
        """Rename a function, keeping the symbol table consistent.

        This is the primitive behind the paper's RenameMainPass
        (``Function::setName``).
        """
        if new_name in self.functions or new_name in self.globals:
            raise ValueError(f"duplicate symbol @{new_name}")
        old_name = function.name
        function.set_name(new_name)
        # Preserve insertion order: downstream passes (CoveragePass)
        # assign ids by iteration order, and baseline/ClosureX builds of
        # the same source must agree on them.
        self.functions = {
            (new_name if key == old_name else key): value
            for key, value in self.functions.items()
        }

    def defined_functions(self) -> Iterator[Function]:
        return (f for f in self.functions.values() if not f.is_declaration)

    def declarations(self) -> Iterator[Function]:
        return (f for f in self.functions.values() if f.is_declaration)

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.defined_functions())

    def __repr__(self) -> str:
        return (
            f"<Module {self.name!r}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
