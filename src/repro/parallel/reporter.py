"""Merged fleet-level stats for parallel campaigns.

The orchestrator can't reuse :class:`CampaignReporter` directly — that
class snapshots one live campaign, and the fleet's campaigns live
behind a transport — so this reporter aggregates the
:class:`RoundReport` stream the sync barriers already carry and
materialises the same AFL ``fuzzer_stats`` / ``plot_data`` dialect via
:func:`repro.telemetry.write_stats_files`.  Per-worker stats
directories (``worker_N/``) come for free when
``ParallelConfig.per_worker_reports`` is on: each shard's own
:class:`CampaignReporter` writes them from inside the worker.

All time quantities are in **virtual** seconds of the shared round
schedule, so the merged ``plot_data`` is deterministic and directly
comparable across runs and worker counts.
"""

from __future__ import annotations

from repro.telemetry import write_stats_files
from repro.vm.interpreter import COVERAGE_MAP_SIZE

MERGED_PLOT_HEADER = (
    "# relative_time, round, corpus_count, global_edges, unique_crashes, "
    "unique_hangs, total_execs, execs_per_sec, imports_delivered, "
    "imports_pending"
)


class ParallelReporter:
    """Writes one aggregate ``fuzzer_stats``/``plot_data`` pair."""

    def __init__(self, out_dir: str, config):
        self.out_dir = out_dir
        self.config = config
        self.plot_rows: list[str] = []

    def barrier(self, round_index: int, reports, hub) -> None:
        """Record one sync barrier's merged snapshot."""
        clock_ns = max(r.clock_ns for r in reports)
        execs = sum(r.execs for r in reports)
        corpus = sum(r.corpus_size for r in reports)
        crashes = sum(r.unique_crashes for r in reports)
        hangs = sum(r.unique_hangs for r in reports)
        vseconds = clock_ns / 1e9
        rate = f"{execs / vseconds:.2f}" if clock_ns else "0.00"
        self.plot_rows.append(
            f"{vseconds:.6f}, {round_index}, {corpus}, "
            f"{hub.virgin.edges_found()}, {crashes}, {hangs}, {execs}, "
            f"{rate}, {hub.stats.delivered}, {hub.pending()}"
        )
        self._write(round_index, reports, hub)

    def finalize(self, result) -> None:
        """Overwrite the stats file with the final merged result."""
        stats = {
            "target": result.target,
            "target_mode": result.mechanism,
            "n_workers": result.n_workers,
            "seed": result.seed,
            "run_time": f"{result.budget_ns / 1e9:.6f}",
            "sync_interval": f"{result.sync_every_ns / 1e9:.6f}",
            "rounds_done": result.rounds,
            "execs_done": result.total_execs,
            "execs_per_sec": f"{result.aggregate_execs_per_vsecond:.2f}",
            "corpus_count": len(result.corpus_hashes),
            "edges_found": result.merged_edges,
            "map_density": (
                f"{100.0 * result.merged_edges / COVERAGE_MAP_SIZE:.2f}%"
            ),
            "unique_crashes": result.merged_unique_crashes,
            "unique_hangs": result.merged_unique_hangs,
            "sync_offered": result.sync.offered,
            "sync_accepted": result.sync.accepted,
            "sync_duplicates": result.sync.duplicates,
            "sync_stale": result.sync.stale,
            "sync_delivered": result.sync.delivered,
            "worker_replacements": result.replacements,
            "command_line": (
                f"repro.parallel --target {result.target} "
                f"--workers {result.n_workers} --seed {result.seed}"
            ),
        }
        write_stats_files(
            self.out_dir, stats, self.plot_rows, MERGED_PLOT_HEADER
        )

    def _write(self, round_index: int, reports, hub) -> None:
        clock_ns = max(r.clock_ns for r in reports)
        execs = sum(r.execs for r in reports)
        stats = {
            "target": self.config.target,
            "target_mode": self.config.mechanism,
            "n_workers": self.config.n_workers,
            "seed": self.config.seed,
            "run_time": f"{clock_ns / 1e9:.6f}",
            "rounds_done": round_index,
            "execs_done": execs,
            "corpus_count": sum(r.corpus_size for r in reports),
            "edges_found": hub.virgin.edges_found(),
            "unique_crashes": sum(r.unique_crashes for r in reports),
            "unique_hangs": sum(r.unique_hangs for r in reports),
            "sync_accepted": hub.stats.accepted,
            "sync_delivered": hub.stats.delivered,
            "imports_pending": hub.pending(),
        }
        write_stats_files(
            self.out_dir, stats, self.plot_rows, MERGED_PLOT_HEADER
        )
