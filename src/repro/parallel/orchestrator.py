"""The multi-worker campaign orchestrator.

:class:`ParallelCampaign` shards one fuzzing campaign across
``n_workers`` shards — one main instance plus secondaries, AFL++'s
``-M``/``-S`` topology — and advances the fleet in lockstep *rounds* of
``sync_every_ns`` virtual nanoseconds.  At each round boundary (a sync
barrier) every worker reports its discoveries, the :class:`SyncHub`
merges them deterministically, and globally novel inputs are broadcast
back out (with backpressure) for workers to adopt at the start of the
next round.

**The scheduler is virtual-clock-aware**: round deadlines are absolute
instants on each worker's own virtual clock (``min(budget, (r + 1) *
sync_every)``), so where a worker pauses is a property of its virtual
timeline, not of host scheduling.  Combined with the hub's shard-order
merge, the whole run — merged coverage, corpus hashes, crash set — is
bit-reproducible for a fixed ``(seed, n_workers, sync_every)`` tuple,
whichever transport executes it:

- :class:`InlineTransport` runs every worker in-process, sequentially —
  zero IPC, the reference semantics, and what the determinism tests
  compare everything against;
- :class:`ProcessTransport` runs each worker in its own **spawned**
  process for real wall-clock parallelism, detects workers that die
  mid-round, and transparently replaces them from their last barrier
  snapshot — the round replays identically, so a crash costs wall-clock
  time but never determinism.

Coordinated multi-shard checkpointing rides the same barrier snapshots:
``checkpoint_path`` persists hub + all shard states every
``checkpoint_every_rounds`` barriers (RPRCKPT1 framing, CRC, rotation),
and :meth:`ParallelCampaign.resume` continues bit-identically even if
any subset of workers — or the orchestrator itself — was killed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.fuzzing import CampaignResult, CheckpointError
from repro.fuzzing.checkpoint import CHECKPOINT_VERSION, load_state, save_state
from repro.fuzzing.coverage import VirginMap
from repro.fuzzing.triage import CrashTriage
from repro.parallel.reporter import ParallelReporter
from repro.parallel.sync import RoundReport, SyncHub, SyncStats
from repro.parallel.worker import (
    WORKER_MECHANISMS,
    WorkerConfig,
    WorkerFinal,
    WorkerRuntime,
    worker_process_main,
)
from repro.targets import get_target

PARALLEL_CHECKPOINT_KIND = "parallel"


@dataclass
class ParallelConfig:
    """Tunables of one multi-worker campaign."""

    target: str
    n_workers: int = 4
    seed: int = 0
    budget_ns: int = 50_000_000       # per-worker virtual budget
    sync_every_ns: int = 10_000_000   # barrier cadence (virtual ns)
    mechanism: str = "closurex"
    use_processes: bool = False       # spawn real worker processes
    supervised: bool = True
    chaos_faults: int = 0             # per-worker fault-plan length
    sentinel_digest_every: int = 0    # integrity sentinel cadence
    sentinel_shadow_every: int = 0
    max_imports_per_sync: int = 64    # sync backpressure cap
    report_dir: str | None = None     # merged fuzzer_stats directory
    per_worker_reports: bool = False  # worker_N/ subdirectories too
    # Coordinated multi-shard checkpoint: written at sync barriers.
    checkpoint_path: str | None = None
    checkpoint_every_rounds: int = 1
    checkpoint_keep: int = 2
    # Wall-clock ceiling per worker reply before the orchestrator
    # declares the process dead (process transport only).
    worker_timeout_s: float = 300.0
    # Shared content-addressed corpus store root: workers put payloads
    # there and the sync exchange goes hash-only (see
    # repro.parallel.sync); None = payloads ride the wire as before.
    corpus_store_root: str | None = None
    # Test hooks: kill the orchestrator after this barrier (checkpoint
    # resume tests), and per-worker death rounds (replacement tests;
    # maps shard_id -> round_index, process transport only).
    halt_after_round: int | None = None
    die_at_rounds: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.sync_every_ns < 1:
            raise ValueError("sync_every_ns must be >= 1")
        if self.mechanism not in WORKER_MECHANISMS:
            raise ValueError(f"unknown mechanism {self.mechanism!r}")

    @property
    def n_rounds(self) -> int:
        return -(-self.budget_ns // self.sync_every_ns)  # ceil div

    def worker_config(self, shard_id: int) -> WorkerConfig:
        report_dir = None
        if self.per_worker_reports and self.report_dir is not None:
            report_dir = f"{self.report_dir}/worker_{shard_id}"
        return WorkerConfig(
            target=self.target,
            shard_id=shard_id,
            n_workers=self.n_workers,
            seed=self.seed,
            budget_ns=self.budget_ns,
            mechanism=self.mechanism,
            supervised=self.supervised,
            chaos_faults=self.chaos_faults,
            sentinel_digest_every=self.sentinel_digest_every,
            sentinel_shadow_every=self.sentinel_shadow_every,
            report_dir=report_dir,
            capture_barrier_state=(
                self.use_processes or self.checkpoint_path is not None
            ),
            die_at_round=self.die_at_rounds.get(shard_id),
            corpus_store_root=self.corpus_store_root,
        )


@dataclass
class ParallelResult:
    """Everything a finished multi-worker campaign knows."""

    target: str
    mechanism: str
    n_workers: int
    seed: int
    budget_ns: int
    sync_every_ns: int
    rounds: int
    workers: list[CampaignResult]
    total_execs: int
    merged_edges: int
    merged_unique_crashes: int
    merged_unique_hangs: int
    merged_crash_identities: list[tuple]
    corpus_hashes: list[str]          # union over shards, sorted
    merged_virgin_bytes: bytes
    sync: SyncStats
    replacements: int = 0             # dead workers healed mid-run
    resumed: bool = False

    @property
    def aggregate_execs_per_vsecond(self) -> float:
        """Fleet throughput against the shared virtual wall: every
        worker fuzzes the same ``budget_ns`` window concurrently, so
        the aggregate rate is total execs over *one* budget."""
        if self.budget_ns == 0:
            return 0.0
        return self.total_execs / (self.budget_ns / 1e9)

    def digest(self) -> str:
        """Stable fingerprint of everything 'bit-identical' means for a
        merged run: coverage, corpus contents, crash set, exec counts."""
        h = hashlib.sha256()
        h.update(self.merged_virgin_bytes)
        for key in self.corpus_hashes:
            h.update(key.encode())
        for identity in self.merged_crash_identities:
            h.update(repr(identity).encode())
        h.update(str(self.total_execs).encode())
        for result in self.workers:
            h.update(
                f"{result.execs}:{result.edges_found}:"
                f"{result.unique_crashes}:{result.elapsed_ns}".encode()
            )
        return h.hexdigest()


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------

class InlineTransport:
    """All workers live in this process; rounds run sequentially.

    This is the reference implementation of the worker protocol: no
    IPC, no replacement (nothing can die), and — because every worker
    is a pure function of its config and imports — results identical
    to :class:`ProcessTransport`.
    """

    def __init__(self, configs: list[WorkerConfig]):
        self.configs = configs
        self.runtimes: list[WorkerRuntime] = []
        self.replacements = 0

    def start(self, states: list[bytes | None]) -> list[RoundReport]:
        self.runtimes = [
            WorkerRuntime(config, state=state)
            for config, state in zip(self.configs, states)
        ]
        return [runtime.start() for runtime in self.runtimes]

    def round(self, commands: list[tuple[int, int, list[bytes]]],
              barrier_states: list[bytes | None]) -> list[RoundReport]:
        return [
            runtime.run_round(round_index, deadline_ns, imports)
            for runtime, (round_index, deadline_ns, imports)
            in zip(self.runtimes, commands)
        ]

    def finish(self) -> list[WorkerFinal]:
        return [runtime.finish() for runtime in self.runtimes]

    def stop(self) -> None:
        """Abandon the fleet without finishing (halt test hook)."""
        self.runtimes = []


class ProcessTransport:
    """One spawned process per worker; commands over pipes.

    The spawn start method (never fork) keeps children independent of
    the orchestrator's heap — each rebuilds its target from the
    registry — which is both the portability-safe choice and what makes
    worker state restoration honest.

    Failure handling: a worker that dies mid-round (crash, OOM-kill,
    the ``die_at_round`` hook) is detected when its reply never comes,
    and replaced by a fresh process restored from the dead worker's
    last barrier snapshot; the pending round command is re-issued and
    replays bit-identically.
    """

    def __init__(self, configs: list[WorkerConfig],
                 timeout_s: float = 300.0):
        import multiprocessing
        self.configs = list(configs)
        self.timeout_s = timeout_s
        self.context = multiprocessing.get_context("spawn")
        self.processes: list = [None] * len(configs)
        self.conns: list = [None] * len(configs)
        self.replacements = 0

    # -- process plumbing ------------------------------------------------

    def _spawn(self, shard_id: int) -> None:
        parent_conn, child_conn = self.context.Pipe()
        process = self.context.Process(
            target=worker_process_main,
            args=(child_conn, self.configs[shard_id]),
            name=f"repro-worker-{shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.processes[shard_id] = process
        self.conns[shard_id] = parent_conn

    def _send(self, shard_id: int, message) -> bool:
        try:
            self.conns[shard_id].send(message)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _recv(self, shard_id: int, expected: str):
        """One reply, or None if the worker is dead/wedged."""
        conn = self.conns[shard_id]
        process = self.processes[shard_id]
        try:
            deadline_budget = self.timeout_s
            while not conn.poll(min(0.05, deadline_budget)):
                deadline_budget -= 0.05
                if deadline_budget <= 0 or not process.is_alive():
                    if process.is_alive():
                        process.terminate()
                    return None
            kind, payload = conn.recv()
        except (EOFError, OSError):
            return None
        if kind != expected:
            raise RuntimeError(
                f"worker {shard_id} answered {kind!r}, expected {expected!r}"
            )
        return payload

    def _reap(self, shard_id: int) -> None:
        process = self.processes[shard_id]
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join(timeout=10)
        conn = self.conns[shard_id]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def _replace(self, shard_id: int, barrier_state: bytes | None,
                 pending_command) -> RoundReport:
        """Heal a dead worker: fresh process, restore, replay round."""
        self._reap(shard_id)
        self.replacements += 1
        # The replacement must not inherit the death sentence, or it
        # would die forever on the same round.
        self.configs[shard_id] = replace(
            self.configs[shard_id], die_at_round=None
        )
        self._spawn(shard_id)
        if not self._send(shard_id, ("start", barrier_state)):
            raise RuntimeError(f"replacement worker {shard_id} unreachable")
        started = self._recv(shard_id, "started")
        if started is None:
            raise RuntimeError(f"replacement worker {shard_id} died booting")
        if not self._send(shard_id, pending_command):
            raise RuntimeError(f"replacement worker {shard_id} lost")
        report = self._recv(shard_id, "round")
        if report is None:
            raise RuntimeError(
                f"replacement worker {shard_id} died replaying its round"
            )
        return report

    # -- transport interface ---------------------------------------------

    def start(self, states: list[bytes | None]) -> list[RoundReport]:
        for shard_id in range(len(self.configs)):
            self._spawn(shard_id)
        for shard_id, state in enumerate(states):
            self._send(shard_id, ("start", state))
        reports = []
        for shard_id in range(len(self.configs)):
            payload = self._recv(shard_id, "started")
            if payload is None:
                raise RuntimeError(f"worker {shard_id} failed to start")
            reports.append(payload)
        return reports

    def round(self, commands: list[tuple[int, int, list[bytes]]],
              barrier_states: list[bytes | None]) -> list[RoundReport]:
        # Fan out first — this is where the wall-clock parallelism is —
        # then collect; failures surface as missing replies and are
        # healed from the barrier snapshots.
        wire = [("round", *command) for command in commands]
        alive = [self._send(shard_id, message)
                 for shard_id, message in enumerate(wire)]
        reports: list[RoundReport] = []
        for shard_id, message in enumerate(wire):
            payload = (
                self._recv(shard_id, "round") if alive[shard_id] else None
            )
            if payload is None:
                payload = self._replace(
                    shard_id, barrier_states[shard_id], message
                )
            reports.append(payload)
        return reports

    def finish(self) -> list[WorkerFinal]:
        for shard_id in range(len(self.configs)):
            self._send(shard_id, ("finish",))
        finals = []
        for shard_id in range(len(self.configs)):
            payload = self._recv(shard_id, "finished")
            if payload is None:
                raise RuntimeError(f"worker {shard_id} died finishing")
            finals.append(payload)
        self.stop()
        return finals

    def stop(self) -> None:
        for shard_id in range(len(self.configs)):
            if self.conns[shard_id] is not None:
                self._send(shard_id, ("stop",))
        for shard_id in range(len(self.configs)):
            self._reap(shard_id)


# ----------------------------------------------------------------------
# the orchestrator
# ----------------------------------------------------------------------

class ParallelCampaign:
    """One sharded fuzzing campaign (see module docstring)."""

    def __init__(self, config: ParallelConfig):
        self.config = config
        self.store = None
        if config.corpus_store_root is not None:
            from repro.store import CorpusStore
            self.store = CorpusStore(config.corpus_store_root)
        self.hub = SyncHub(
            config.n_workers,
            max_imports_per_sync=config.max_imports_per_sync,
            store=self.store,
        )
        self.round_index = 0
        self.barrier_states: list[bytes | None] = [None] * config.n_workers
        self.reporter = (
            ParallelReporter(config.report_dir, config)
            if config.report_dir is not None else None
        )
        # Barrier observer: called as ``on_barrier(round_index,
        # deadline_ns, reports, hub)`` after every sync barrier's merge.
        # This is how the experiment platform's measurer samples a
        # multi-worker trial's coverage growth without perturbing the
        # round loop (observers must not mutate reports or the hub).
        self.on_barrier = None
        # Cooperative stop: when set (by another thread — the fuzzing
        # service's shutdown path), the round loop checkpoints at the
        # next barrier and returns ``None`` instead of running to the
        # budget; the campaign stays resumable from that checkpoint.
        self.stop_requested = False
        self._resume = False

    # -- checkpoint / resume ----------------------------------------------

    @classmethod
    def resume(cls, path: str,
               config: ParallelConfig | None = None) -> "ParallelCampaign":
        """Rebuild a parallel campaign from a coordinated checkpoint;
        ``run()`` then continues bit-identically to the uninterrupted
        run — every shard restores its barrier snapshot, the hub
        restores its novelty filter and outboxes, and the round loop
        re-enters where it left off."""
        state = load_state(path)
        if state.get("kind") != PARALLEL_CHECKPOINT_KIND:
            raise CheckpointError(
                f"{path!r} is not a parallel campaign checkpoint"
            )
        saved = state["config"]
        if config is None:
            config = saved
        elif (config.target, config.n_workers, config.seed,
              config.budget_ns, config.sync_every_ns) != (
                  saved.target, saved.n_workers, saved.seed,
                  saved.budget_ns, saved.sync_every_ns):
            raise CheckpointError(
                "checkpoint was recorded under a different "
                "(target, n_workers, seed, budget, sync_every) tuple"
            )
        campaign = cls(config)
        campaign.hub = SyncHub.from_state(state["hub"], store=campaign.store)
        campaign.round_index = state["round_index"]
        campaign.barrier_states = list(state["barrier_states"])
        campaign._resume = True
        return campaign

    def checkpoint(self, path: str | None = None) -> str:
        path = path if path is not None else self.config.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint path configured")
        # Strip test hooks from the persisted config: a resumed run
        # must not re-halt or re-kill.
        persisted = replace(
            self.config, halt_after_round=None, die_at_rounds={},
        )
        save_state(
            {
                "version": CHECKPOINT_VERSION,
                "kind": PARALLEL_CHECKPOINT_KIND,
                "config": persisted,
                "round_index": self.round_index,
                "hub": self.hub.snapshot_state(),
                "barrier_states": list(self.barrier_states),
            },
            path,
            keep=self.config.checkpoint_keep,
        )
        return path

    # -- the round loop ----------------------------------------------------

    def run(self) -> ParallelResult | None:
        """Drive the fleet to the budget deadline and merge.

        Returns ``None`` when the ``halt_after_round`` test hook killed
        the orchestrator mid-run (resume from the checkpoint to
        continue); otherwise the merged :class:`ParallelResult`.
        """
        config = self.config
        spec = get_target(config.target)
        configs = [
            config.worker_config(shard) for shard in range(config.n_workers)
        ]
        transport = (
            ProcessTransport(configs, timeout_s=config.worker_timeout_s)
            if config.use_processes else InlineTransport(configs)
        )
        try:
            return self._drive(transport, spec)
        finally:
            transport.stop()

    def _drive(self, transport, spec) -> ParallelResult | None:
        config = self.config
        if self._resume:
            # Workers restore their barrier snapshots; the hub already
            # carries the sync state matching those snapshots.
            transport.start(list(self.barrier_states))
        else:
            self.hub.register_seeds([bytes(s) for s in spec.seeds])
            reports = transport.start([None] * config.n_workers)
            self._absorb(reports)
            if config.checkpoint_path is not None:
                # Barrier-0 baseline, same rationale as Campaign.start.
                self.checkpoint()

        n_rounds = config.n_rounds
        while self.round_index < n_rounds:
            round_index = self.round_index
            deadline_ns = min(
                config.budget_ns, (round_index + 1) * config.sync_every_ns
            )
            commands = [
                (round_index, deadline_ns, self.hub.drain(shard))
                for shard in range(config.n_workers)
            ]
            reports = transport.round(commands, list(self.barrier_states))
            self._absorb(reports)
            self.round_index = round_index + 1
            if self.reporter is not None:
                self.reporter.barrier(self.round_index, reports, self.hub)
            if self.on_barrier is not None:
                self.on_barrier(self.round_index, deadline_ns, reports,
                                self.hub)
            if (config.checkpoint_path is not None
                    and self.round_index % config.checkpoint_every_rounds == 0):
                self.checkpoint()
            if (config.halt_after_round is not None
                    and self.round_index > config.halt_after_round):
                return None    # the orchestrator "dies" here
            if self.stop_requested:
                if config.checkpoint_path is not None:
                    self.checkpoint()
                return None    # cooperative stop; resumable

        finals = sorted(transport.finish(), key=lambda f: f.shard_id)
        result = self._merge(finals, transport.replacements)
        if self.reporter is not None:
            self.reporter.finalize(result)
        return result

    def _absorb(self, reports: list[RoundReport]) -> None:
        self.hub.ingest(reports)
        for report in reports:
            self.barrier_states[report.shard_id] = report.state

    # -- merging -------------------------------------------------------------

    def _merge(self, finals: list[WorkerFinal],
               replacements: int) -> ParallelResult:
        merged_virgin = VirginMap()
        merged_triage = CrashTriage()
        corpus_hashes: set[str] = set()
        for final in finals:
            merged_virgin.merge(VirginMap.from_bytes(final.virgin_bytes))
            merged_triage.merge(final.triage)
            corpus_hashes.update(final.corpus_hashes)
        results = [final.result for final in finals]
        return ParallelResult(
            target=self.config.target,
            mechanism=self.config.mechanism,
            n_workers=self.config.n_workers,
            seed=self.config.seed,
            budget_ns=self.config.budget_ns,
            sync_every_ns=self.config.sync_every_ns,
            rounds=self.round_index,
            workers=results,
            total_execs=sum(r.execs for r in results),
            merged_edges=merged_virgin.edges_found(),
            merged_unique_crashes=merged_triage.unique_count,
            merged_unique_hangs=merged_triage.unique_hang_count,
            merged_crash_identities=sorted(
                (r.kind.value, r.function, r.identity[2])
                for r in merged_triage.reports()
            ),
            corpus_hashes=sorted(corpus_hashes),
            merged_virgin_bytes=merged_virgin.to_bytes(),
            sync=self.hub.stats,
            replacements=replacements,
            resumed=self._resume,
        )
