"""One shard of a parallel campaign: config, runtime, process entry.

A worker owns a full single-campaign stack — its own :class:`Kernel`
(so its own virtual clock), its own executor ladder (mechanism executor,
optionally wrapped by an :class:`IntegritySentinel` and a
:class:`SupervisedExecutor` with a per-worker chaos plan), and its own
:class:`Campaign` — and advances it in *rounds* between sync barriers.

Everything a worker does is a pure function of ``(WorkerConfig, the
imports each round receives)``: seeds, RNG streams, fault plans and
sentinel cadences are all derived deterministically from the campaign
seed and the shard id, so running a worker inline, in a spawned
process, or restored from a barrier snapshot after a crash produces
bit-identical results.

The module is **spawn-safe**: :func:`worker_process_main` is a
top-level function, :class:`WorkerConfig` is a plain picklable
dataclass, and the target program is rebuilt from the registry by name
inside the child — nothing unpicklable ever crosses the process
boundary.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field

from repro.chaos.plan import FaultInjector, FaultPlan
from repro.execution import (
    ClosureXExecutor,
    Executor,
    ForkServerExecutor,
    FreshProcessExecutor,
    NaivePersistentExecutor,
    SupervisedExecutor,
)
from repro.fuzzing import Campaign, CampaignConfig, CampaignResult
from repro.fuzzing.checkpoint import capture_state
from repro.fuzzing.corpus import input_hash
from repro.parallel.sync import RoundReport, SyncCandidate
from repro.sim_os import Kernel
from repro.targets import get_target
from repro.telemetry import TelemetryConfig

#: Mechanisms a worker knows how to build (same spellings as the
#: experiment runner).
WORKER_MECHANISMS = ("closurex", "forkserver", "persistent", "fresh")


def derive_worker_seed(seed: int, shard_id: int) -> int:
    """Per-shard RNG seed: a fixed integer mix of the campaign seed and
    the shard id, so shards explore divergent mutation streams while the
    whole fleet stays a pure function of ``(seed, n_workers)``."""
    mixed = (seed * 0x9E3779B1 + (shard_id + 1) * 0x85EBCA77) & 0xFFFFFFFF
    mixed ^= mixed >> 15
    return mixed & 0x7FFFFFFF


@dataclass
class WorkerConfig:
    """Everything needed to (re)build one shard, picklable for spawn."""

    target: str                       # registry name (rebuilt in-process)
    shard_id: int
    n_workers: int
    seed: int                         # campaign seed (shard seed derived)
    budget_ns: int
    mechanism: str = "closurex"
    supervised: bool = True           # wrap in the self-healing ladder
    chaos_faults: int = 0             # per-worker FaultPlan length (0=off)
    sentinel_digest_every: int = 0    # integrity sentinel cadence (0=off)
    sentinel_shadow_every: int = 0
    enable_trim: bool = True
    havoc_base_energy: int = 48
    max_input_size: int = 1024
    report_dir: str | None = None     # per-worker fuzzer_stats directory
    # Capture a pickled barrier snapshot in every RoundReport.  The
    # orchestrator turns this on when it needs restorable state — the
    # process transport (worker replacement) or a coordinated
    # checkpoint — and leaves it off otherwise, because serialising a
    # grown corpus every round is pure overhead.
    capture_barrier_state: bool = False
    # Test hook (process transport only): die mid-round with this index,
    # modelling a worker process crash the orchestrator must heal.
    die_at_round: int | None = None
    # Shared content-addressed corpus store root (repro.store
    # .CorpusStore).  When set, the worker puts every queue payload into
    # the store (owner = its campaign identity) and offers *hash-only*
    # sync candidates; the orchestrator's hub resolves payloads from the
    # same root.  A path, not a live handle, so the config stays
    # picklable for spawn.
    corpus_store_root: str | None = None

    @property
    def worker_seed(self) -> int:
        return derive_worker_seed(self.seed, self.shard_id)

    @property
    def is_main(self) -> bool:
        """Shard 0 is the main instance (AFL++'s ``-M``); the rest are
        secondaries.  The roles differ only in labelling today — every
        shard trims and havocs — but the split is where main-only
        stages (deterministic mutation) would attach."""
        return self.shard_id == 0

    def campaign_config(self) -> CampaignConfig:
        config = CampaignConfig(
            budget_ns=self.budget_ns,
            seed=self.worker_seed,
            shard_id=self.shard_id,
            enable_trim=self.enable_trim,
            havoc_base_energy=self.havoc_base_energy,
            max_input_size=self.max_input_size,
        )
        if self.report_dir is not None:
            config.telemetry = TelemetryConfig(
                enabled=True, sink="null", report_dir=self.report_dir,
            )
        return config


def build_worker_executor(config: WorkerConfig) -> Executor:
    """Construct this shard's executor ladder from its config."""
    spec = get_target(config.target)
    kernel = Kernel()
    sentinel = None
    if config.sentinel_digest_every or config.sentinel_shadow_every:
        from repro.integrity import EscalationPolicy, IntegritySentinel
        sentinel = IntegritySentinel(EscalationPolicy(
            digest_every=config.sentinel_digest_every,
            shadow_every=config.sentinel_shadow_every,
        ))
    if config.mechanism == "closurex":
        inner: Executor = ClosureXExecutor(
            spec.build_closurex(), spec.image_bytes, kernel,
            sentinel=sentinel,
        )
    elif config.mechanism == "forkserver":
        inner = ForkServerExecutor(
            spec.build_baseline(), spec.image_bytes, kernel
        )
    elif config.mechanism == "persistent":
        inner = NaivePersistentExecutor(
            spec.build_persistent(), spec.image_bytes, kernel
        )
    elif config.mechanism == "fresh":
        inner = FreshProcessExecutor(
            spec.build_baseline(), spec.image_bytes, kernel
        )
    else:
        raise ValueError(f"unknown mechanism {config.mechanism!r}")
    if not config.supervised:
        return inner
    injector = None
    if config.chaos_faults:
        injector = FaultInjector(
            FaultPlan.generate(config.worker_seed, config.chaos_faults),
            clock=kernel.clock,
        )
    fallback = None
    if config.mechanism == "closurex":
        def fallback() -> Executor:
            return ForkServerExecutor(
                spec.build_baseline(), spec.image_bytes, kernel
            )
    return SupervisedExecutor(inner, injector=injector,
                              fallback_factory=fallback)


@dataclass
class WorkerFinal:
    """A finished shard's contribution to the merged result."""

    shard_id: int
    result: CampaignResult
    virgin_bytes: bytes           # full local virgin map (to_bytes)
    triage: object                # CrashTriage (merged at the top)
    corpus_hashes: list[str] = field(default_factory=list)


class WorkerRuntime:
    """One live shard: a campaign advanced round-by-round."""

    def __init__(self, config: WorkerConfig, state: bytes | None = None):
        self.config = config
        self.executor = build_worker_executor(config)
        campaign_config = config.campaign_config()
        self.store = None
        if config.corpus_store_root is not None:
            from repro.store import CorpusStore
            self.store = CorpusStore(config.corpus_store_root)
            campaign_config.corpus_store = self.store
        if state is not None:
            # *state* is a pickled barrier snapshot (RoundReport.state).
            self.campaign = Campaign.from_state(
                pickle.loads(state), self.executor, campaign_config
            )
        else:
            spec = get_target(config.target)
            self.campaign = Campaign(
                self.executor, spec.seeds, campaign_config
            )
        # Hashes this shard already holds or has already offered; used
        # to drop duplicate imports and to avoid re-exporting entries
        # the hub is guaranteed to know.
        self._known_hashes: set[str] = set()

    def start(self) -> RoundReport:
        """Boot + seed (or restore), and report the barrier-0 state."""
        self.campaign.start()
        # The common seed corpus is known fleet-wide: exclude it from
        # the export stream (restore replays this bookkeeping too,
        # because export cursors travel inside the corpus state).
        for entry in self.campaign.corpus.export_new():
            self._known_hashes.add(input_hash(entry.data))
        self._known_hashes |= self.campaign.corpus.content_hashes()
        return self._report(round_index=-1, imported=0, discoveries=[])

    def run_round(self, round_index: int, deadline_ns: int,
                  imports: list[bytes]) -> RoundReport:
        """Adopt this barrier's imports, fuzz to the round deadline,
        and report discoveries + a barrier state snapshot."""
        imported = 0
        for data in imports:
            key = input_hash(data)
            if key in self._known_hashes:
                continue
            self._known_hashes.add(key)
            if self.campaign.import_input(data):
                imported += 1
        # Imports joined the queue via corpus.add and would re-export;
        # flush the cursor past them (the hub already knows them).
        self.campaign.corpus.export_new()
        self.campaign.step_until(deadline_ns)
        discoveries = []
        for entry in self.campaign.corpus.export_new():
            key = input_hash(entry.data)
            if key in self._known_hashes:
                continue
            self._known_hashes.add(key)
            discoveries.append(
                SyncCandidate.from_entry(
                    self.config.shard_id, entry,
                    store=self.store,
                    owner=self.campaign.corpus_owner,
                )
            )
        return self._report(round_index, imported, discoveries)

    def finish(self) -> WorkerFinal:
        """Tear down and hand the merged-result ingredients upward."""
        result = self.campaign.finish_run()
        return WorkerFinal(
            shard_id=self.config.shard_id,
            result=result,
            virgin_bytes=self.campaign.virgin.to_bytes(),
            triage=self.campaign.triage,
            corpus_hashes=sorted(self.campaign.corpus.content_hashes()),
        )

    def _report(self, round_index: int, imported: int,
                discoveries: list[SyncCandidate]) -> RoundReport:
        campaign = self.campaign
        state = None
        if self.config.capture_barrier_state:
            # Serialise *now*: the report must freeze the barrier state,
            # not alias live objects the next round will mutate.
            state = pickle.dumps(
                capture_state(campaign), protocol=pickle.HIGHEST_PROTOCOL
            )
        return RoundReport(
            shard_id=self.config.shard_id,
            round_index=round_index,
            clock_ns=campaign.clock.now_ns,
            execs=campaign.execs,
            edges_found=campaign.virgin.edges_found(),
            corpus_size=len(campaign.corpus),
            unique_crashes=campaign.triage.unique_count,
            total_crashes=campaign.triage.total_crashes,
            unique_hangs=campaign.triage.unique_hang_count,
            imported=imported,
            discoveries=discoveries,
            state=state,
        )


# ----------------------------------------------------------------------
# process transport entry point
# ----------------------------------------------------------------------

def worker_process_main(conn, config: WorkerConfig) -> None:
    """Spawned-child main loop: serve orchestrator commands over *conn*.

    Protocol (one reply per command, in order):

    - ``("start", state_or_None)`` → ``("started", RoundReport)``
    - ``("round", index, deadline_ns, imports)`` → ``("round", RoundReport)``
    - ``("finish",)`` → ``("finished", WorkerFinal)``
    - ``("stop",)`` → child exits.

    The ``die_at_round`` test hook makes the child ``os._exit`` halfway
    through the matching round — after real fuzzing work, with state the
    orchestrator never sees — which is exactly the failure the
    replacement path must heal from the previous barrier snapshot.
    """
    runtime: WorkerRuntime | None = None
    try:
        while True:
            command = conn.recv()
            op = command[0]
            if op == "start":
                runtime = WorkerRuntime(config, state=command[1])
                conn.send(("started", runtime.start()))
            elif op == "round":
                assert runtime is not None, "round before start"
                _, round_index, deadline_ns, imports = command
                if config.die_at_round == round_index:
                    # Burn real progress first so the crash loses work:
                    # the replacement must not be able to cheat by
                    # replaying a half-synced state.
                    midpoint = (
                        runtime.campaign.clock.now_ns
                        + max(1, (deadline_ns
                                  - runtime.campaign.clock.now_ns) // 2)
                    )
                    runtime.campaign.step_until(midpoint)
                    conn.close()
                    os._exit(17)
                conn.send((
                    "round",
                    runtime.run_round(round_index, deadline_ns, imports),
                ))
            elif op == "finish":
                assert runtime is not None, "finish before start"
                conn.send(("finished", runtime.finish()))
            elif op == "stop":
                return
            else:
                raise ValueError(f"unknown worker command {op!r}")
    except EOFError:
        # Orchestrator went away; nothing useful left to do.
        return
    finally:
        try:
            conn.close()
        except OSError:
            pass
