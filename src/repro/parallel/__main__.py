"""Command-line entry point for parallel multi-worker campaigns.

Examples::

    # 4-worker campaign, deterministic for the (seed, workers, sync) tuple
    python -m repro.parallel --target md4c --workers 4 --seed 7

    # real OS processes + coordinated checkpoint every barrier
    python -m repro.parallel --target json_parser --workers 4 \\
        --processes --checkpoint /tmp/fleet.ckpt

    # continue a checkpointed fleet bit-identically
    python -m repro.parallel --resume /tmp/fleet.ckpt

The final line of output is ``digest: <sha256>`` — run the same
configuration twice and the digests match bit-for-bit.
"""

from __future__ import annotations

import argparse
import sys

from repro.parallel.orchestrator import ParallelCampaign, ParallelConfig
from repro.parallel.worker import WORKER_MECHANISMS
from repro.targets import target_names

MS = 1_000_000  # virtual ns per virtual ms


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel",
        description="Shard one fuzzing campaign across N deterministic "
                    "workers with periodic corpus sync.",
    )
    parser.add_argument("--target", choices=target_names(),
                        help="target program (see --list-targets)")
    parser.add_argument("--workers", type=int, default=4,
                        help="number of shards (default: 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default: 0)")
    parser.add_argument("--mechanism", choices=WORKER_MECHANISMS,
                        default="closurex",
                        help="execution mechanism (default: closurex)")
    parser.add_argument("--budget-ms", type=int, default=20,
                        help="per-worker virtual budget in virtual "
                             "milliseconds (default: 20)")
    parser.add_argument("--sync-ms", type=int, default=4,
                        help="sync barrier cadence in virtual "
                             "milliseconds (default: 4)")
    parser.add_argument("--processes", action="store_true",
                        help="run workers as spawned OS processes "
                             "(default: inline, same results)")
    parser.add_argument("--max-imports", type=int, default=64,
                        help="sync backpressure cap per worker per "
                             "barrier (default: 64)")
    parser.add_argument("--chaos-faults", type=int, default=0,
                        help="per-worker injected-fault plan length")
    parser.add_argument("--checkpoint", metavar="PATH",
                        help="write a coordinated multi-shard checkpoint "
                             "at every sync barrier")
    parser.add_argument("--resume", metavar="PATH",
                        help="resume a fleet from a coordinated checkpoint")
    parser.add_argument("--report-dir", metavar="DIR",
                        help="write merged fuzzer_stats/plot_data here")
    parser.add_argument("--per-worker-reports", action="store_true",
                        help="also write worker_N/ stats under "
                             "--report-dir")
    parser.add_argument("--list-targets", action="store_true",
                        help="list available targets and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_targets:
        for name in target_names():
            print(name)
        return 0
    if args.resume is not None:
        campaign = ParallelCampaign.resume(args.resume)
    else:
        if args.target is None:
            print("error: --target is required (or --resume / "
                  "--list-targets)", file=sys.stderr)
            return 2
        campaign = ParallelCampaign(ParallelConfig(
            target=args.target,
            n_workers=args.workers,
            seed=args.seed,
            budget_ns=args.budget_ms * MS,
            sync_every_ns=args.sync_ms * MS,
            mechanism=args.mechanism,
            use_processes=args.processes,
            chaos_faults=args.chaos_faults,
            max_imports_per_sync=args.max_imports,
            checkpoint_path=args.checkpoint,
            report_dir=args.report_dir,
            per_worker_reports=args.per_worker_reports,
        ))
    result = campaign.run()
    if result is None:  # halt hook — only reachable programmatically
        print("halted mid-run (resume from the checkpoint to continue)")
        return 0
    config = campaign.config
    print(f"target           : {result.target} [{result.mechanism}]")
    print(f"workers          : {result.n_workers} "
          f"({'processes' if config.use_processes else 'inline'})")
    print(f"seed             : {result.seed}")
    print(f"budget           : {result.budget_ns / MS:g} vms x "
          f"{result.rounds} rounds "
          f"(sync every {result.sync_every_ns / MS:g} vms)")
    print(f"total execs      : {result.total_execs}")
    print(f"aggregate rate   : "
          f"{result.aggregate_execs_per_vsecond:,.0f} execs/vsec")
    print(f"merged edges     : {result.merged_edges}")
    print(f"merged corpus    : {len(result.corpus_hashes)} inputs")
    print(f"unique crashes   : {result.merged_unique_crashes} "
          f"(hangs: {result.merged_unique_hangs})")
    print(f"sync             : {result.sync.accepted} accepted / "
          f"{result.sync.offered} offered, "
          f"{result.sync.delivered} delivered, "
          f"{result.sync.duplicates} dup, {result.sync.stale} stale")
    if result.replacements:
        print(f"replacements     : {result.replacements}")
    per_worker = ", ".join(
        f"w{i}={r.execs}" for i, r in enumerate(result.workers)
    )
    print(f"per-worker execs : {per_worker}")
    print(f"digest: {result.digest()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
