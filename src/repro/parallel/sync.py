"""Deterministic corpus-synchronization protocol between campaign shards.

AFL++'s multi-instance mode syncs by rescanning sibling queue
directories; here the orchestrator is the medium instead of the
filesystem, which lets the exchange be *deterministic*: at each sync
barrier every worker reports the queue entries it discovered since the
previous barrier, the :class:`SyncHub` folds them in **shard order**
into a global novelty filter, and globally interesting inputs are
broadcast to every other worker through per-worker FIFO outboxes.

Determinism invariants the protocol maintains:

- **ordering** — candidates are ingested sorted by ``(shard_id,
  entry_id)``, never by arrival time, so process scheduling cannot
  reorder the merge;
- **dedup** — inputs are identified by content hash
  (:func:`repro.fuzzing.corpus.input_hash`); an input seen once — as a
  seed, an accepted discovery, or a rejected duplicate — is never
  exchanged again;
- **novelty** — a candidate joins the global corpus only if its
  classified coverage signature clears the hub's virgin map
  (:meth:`VirginMap.observe_classified`), AFL's "interesting to the
  fleet" test;
- **backpressure** — each worker receives at most
  ``max_imports_per_sync`` inputs per barrier; the surplus stays
  queued in its outbox (FIFO) for later barriers, so a discovery burst
  delays — never reorders or drops — the exchange.

With a shared :class:`repro.store.CorpusStore`, the exchange is
**hash-only**: workers ``put`` payloads into the content-addressed
store and offer candidates carrying just the sha256 digest (which *is*
the store address, since ``input_hash`` uses the same hash); the hub
resolves payloads from the store only at delivery time.  Candidates,
hub snapshots, and checkpoints then carry digests instead of input
bytes — the payload crosses the process boundary zero times — and the
merge stays bit-identical because dedup/novelty/ordering never looked
at the bytes anyway.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace

from repro.fuzzing.corpus import QueueEntry, input_hash
from repro.fuzzing.coverage import VirginMap


@dataclass(frozen=True)
class SyncCandidate:
    """One queue entry offered to the hub at a sync barrier.

    ``data`` is ``None`` for hash-only candidates: the payload lives in
    the shared corpus store under ``digest`` and is resolved only when
    the hub delivers the import.
    """

    shard_id: int
    entry_id: int
    data: bytes | None
    signature: bytes      # classified coverage map (corpus signature)
    exec_ns: int
    digest: str = ""      # sha256 store address (hash-only exchange)

    @property
    def hash(self) -> str:
        return self.digest or input_hash(self.data)

    @classmethod
    def from_entry(cls, shard_id: int, entry: QueueEntry,
                   store=None, owner: str | None = None) -> "SyncCandidate":
        """Wrap one queue entry; with *store*, the payload is put into
        the content-addressed store and the candidate ships hash-only."""
        digest = ""
        data: bytes | None = entry.data
        if store is not None:
            digest = store.put(entry.data, owner=owner)
            data = None
        return cls(
            shard_id=shard_id,
            entry_id=entry.entry_id,
            data=data,
            signature=entry.coverage_signature,
            exec_ns=entry.exec_ns,
            digest=digest,
        )


@dataclass
class RoundReport:
    """What one worker tells the orchestrator at a sync barrier."""

    shard_id: int
    round_index: int
    clock_ns: int
    execs: int                    # cumulative
    edges_found: int              # local virgin map density
    corpus_size: int
    unique_crashes: int
    total_crashes: int
    unique_hangs: int
    imported: int                 # sync imports adopted this round
    discoveries: list[SyncCandidate] = field(default_factory=list)
    # Pickled barrier snapshot (checkpoint / worker replacement):
    # pickle.dumps of repro.fuzzing.checkpoint.capture_state, frozen at
    # the barrier so later rounds cannot mutate it.  None unless the
    # orchestrator asked for state capture.
    state: bytes | None = None


@dataclass
class SyncStats:
    """Cumulative hub counters (surface in the merged report)."""

    offered: int = 0              # candidates received from workers
    duplicates: int = 0           # dropped by content-hash dedup
    stale: int = 0                # dropped by the novelty filter
    accepted: int = 0             # joined the global corpus + broadcast
    delivered: int = 0            # inputs handed to workers as imports
    deferred: int = 0             # backpressure: left queued at a barrier


class SyncHub:
    """The orchestrator-side merge point of the sync protocol."""

    def __init__(self, n_workers: int, max_imports_per_sync: int = 64,
                 map_size: int | None = None, store=None):
        self.n_workers = n_workers
        self.max_imports_per_sync = max_imports_per_sync
        self.virgin = (
            VirginMap(map_size) if map_size is not None else VirginMap()
        )
        self.seen_hashes: set[str] = set()
        self.accepted: list[SyncCandidate] = []
        self.outboxes: list[deque[SyncCandidate]] = [
            deque() for _ in range(n_workers)
        ]
        self.stats = SyncStats()
        # Shared corpus store: resolves hash-only candidates at drain
        # time (duck-typed ``get(digest) -> bytes``).
        self.store = store

    def register_seeds(self, seeds: list[bytes]) -> None:
        """Mark the common seed corpus as already known: every worker
        starts from it, so rediscovering a seed is never interesting."""
        for seed in seeds:
            self.seen_hashes.add(input_hash(seed))

    def ingest(self, reports: list[RoundReport]) -> int:
        """Fold one barrier's discoveries in; returns how many were
        globally novel.  *reports* may arrive in any order — they are
        sorted by shard id here, which is what makes the merge
        independent of process scheduling."""
        fresh = 0
        for report in sorted(reports, key=lambda r: r.shard_id):
            for candidate in report.discoveries:
                self.stats.offered += 1
                key = candidate.hash
                if key in self.seen_hashes:
                    self.stats.duplicates += 1
                    continue
                self.seen_hashes.add(key)
                novelty = self.virgin.observe_classified(candidate.signature)
                if novelty == VirginMap.NO_NEW:
                    self.stats.stale += 1
                    continue
                self.accepted.append(candidate)
                self.stats.accepted += 1
                fresh += 1
                for shard in range(self.n_workers):
                    if shard != candidate.shard_id:
                        self.outboxes[shard].append(candidate)
        return fresh

    def _payload(self, candidate: SyncCandidate) -> bytes:
        """The candidate's input bytes, resolving hash-only candidates
        through the shared corpus store."""
        if candidate.data is not None:
            return candidate.data
        if self.store is None:
            raise RuntimeError(
                f"hash-only sync candidate {candidate.hash} cannot be "
                "delivered: the hub has no corpus store to resolve it from"
            )
        return self.store.get(candidate.hash)

    def drain(self, shard_id: int) -> list[bytes]:
        """Pop this worker's next batch of imports (bounded by the
        backpressure cap; the remainder stays queued in FIFO order)."""
        outbox = self.outboxes[shard_id]
        batch: list[bytes] = []
        while outbox and len(batch) < self.max_imports_per_sync:
            batch.append(self._payload(outbox.popleft()))
        self.stats.delivered += len(batch)
        self.stats.deferred += len(outbox)
        return batch

    def pending(self) -> int:
        """Inputs still queued across all outboxes (backpressure gauge)."""
        return sum(len(outbox) for outbox in self.outboxes)

    def corpus_hashes(self) -> list[str]:
        """Sorted content hashes of the globally novel corpus."""
        return sorted(c.hash for c in self.accepted)

    # -- checkpoint support ---------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "max_imports_per_sync": self.max_imports_per_sync,
            "virgin": self.virgin.to_bytes(),
            "seen_hashes": sorted(self.seen_hashes),
            "accepted": list(self.accepted),
            "outboxes": [list(outbox) for outbox in self.outboxes],
            # Copied, not aliased: the snapshot must freeze the counters.
            "stats": replace(self.stats),
        }

    @classmethod
    def from_state(cls, state: dict, store=None) -> "SyncHub":
        hub = cls(state["n_workers"], state["max_imports_per_sync"],
                  store=store)
        hub.virgin = VirginMap.from_bytes(state["virgin"])
        hub.seen_hashes = set(state["seen_hashes"])
        hub.accepted = list(state["accepted"])
        hub.outboxes = [deque(items) for items in state["outboxes"]]
        hub.stats = state["stats"]
        return hub
