"""Multi-worker parallel fuzzing campaigns with deterministic sync.

This package shards one fuzzing campaign across N workers — AFL++'s
main/secondary topology — each running a full single-campaign stack
(own virtual clock, own executor ladder, own corpus) and exchanging
interesting inputs at deterministic sync barriers.  For a fixed
``(seed, n_workers, sync_every_ns)`` the merged result — coverage map,
corpus hashes, crash set — is bit-identical across runs, whether the
workers run inline in one process or as spawned OS processes.

- :mod:`repro.parallel.orchestrator` — the round loop, transports,
  worker replacement, coordinated checkpoint/resume.
- :mod:`repro.parallel.sync` — the hub: novelty-keyed input exchange
  with content-hash dedup and FIFO backpressure.
- :mod:`repro.parallel.worker` — one shard: config, runtime, the
  spawn-safe process entry point.
- :mod:`repro.parallel.reporter` — merged AFL-style stats.

Run ``python -m repro.parallel --target md4c --workers 4 --seed 7``
for the CLI.
"""

from repro.parallel.orchestrator import (
    InlineTransport,
    ParallelCampaign,
    ParallelConfig,
    ParallelResult,
    ProcessTransport,
)
from repro.parallel.reporter import MERGED_PLOT_HEADER, ParallelReporter
from repro.parallel.sync import RoundReport, SyncCandidate, SyncHub, SyncStats
from repro.parallel.worker import (
    WORKER_MECHANISMS,
    WorkerConfig,
    WorkerFinal,
    WorkerRuntime,
    derive_worker_seed,
    worker_process_main,
)

__all__ = [
    "InlineTransport", "ParallelCampaign", "ParallelConfig",
    "ParallelResult", "ProcessTransport",
    "MERGED_PLOT_HEADER", "ParallelReporter",
    "RoundReport", "SyncCandidate", "SyncHub", "SyncStats",
    "WORKER_MECHANISMS", "WorkerConfig", "WorkerFinal", "WorkerRuntime",
    "derive_worker_seed", "worker_process_main",
]
