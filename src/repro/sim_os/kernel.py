"""Simulated kernel: virtual clock, process table, fork/spawn accounting.

The executors (``repro.execution``) drive all process lifecycle events
through this layer so that every mechanism's overhead lands on the same
virtual clock.  The kernel does not *run* anything — MiniVM instances
do — it owns time and process bookkeeping:

- :class:`VirtualClock` accumulates virtual nanoseconds.
- :class:`Kernel` charges the cost model for spawn / fork / copy-on-write /
  teardown and keeps per-mechanism statistics the experiments report.

Process lifecycle events are additionally mirrored to a telemetry
tracer (``kernel.spawn`` / ``kernel.fork`` / ``kernel.teardown`` spans
covering exactly the virtual ns the operation was charged); the default
tracer is the shared null tracer, so an unobserved kernel pays one
attribute read per lifecycle event.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.sim_os.costs import DEFAULT_COSTS, CostModel
from repro.telemetry.tracer import NULL_TRACER, Tracer


class VirtualClock:
    """Monotonic virtual time in nanoseconds."""

    def __init__(self) -> None:
        self.now_ns = 0

    def advance(self, ns: int) -> None:
        if ns < 0:
            raise ValueError("time cannot go backwards")
        self.now_ns += ns

    @property
    def now_seconds(self) -> float:
        return self.now_ns / 1e9

    def __repr__(self) -> str:
        return f"<VirtualClock {self.now_ns} ns>"


class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""

    RUNNING = "running"
    EXITED = "exited"
    CRASHED = "crashed"


@dataclass
class ProcessRecord:
    """One simulated process's lifecycle entry."""

    pid: int
    parent_pid: int | None
    image: str
    state: ProcessState = ProcessState.RUNNING
    exit_code: int | None = None
    spawned_at_ns: int = 0
    ended_at_ns: int | None = None


@dataclass
class KernelStats:
    """Cumulative kernel-operation counters."""

    spawns: int = 0
    forks: int = 0
    teardowns: int = 0
    failed_spawns: int = 0
    failed_forks: int = 0
    spawn_ns: int = 0
    fork_ns: int = 0
    cow_ns: int = 0
    teardown_ns: int = 0

    def process_management_ns(self) -> int:
        return self.spawn_ns + self.fork_ns + self.cow_ns + self.teardown_ns


class Kernel:
    """Process lifecycle + time accounting for one simulated machine."""

    def __init__(self, costs: CostModel | None = None,
                 clock: VirtualClock | None = None,
                 tracer: Tracer | None = None,
                 faults=None):
        self.costs = costs if costs is not None else DEFAULT_COSTS
        self.clock = clock if clock is not None else VirtualClock()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Optional chaos hook (duck-typed: ``faults.poll(site)`` returns
        # an exception instance to raise, or None).  The kernel never
        # imports repro.chaos — the injection plane stays above it.
        self.faults = faults
        self.stats = KernelStats()
        self.processes: dict[int, ProcessRecord] = {}
        self._pids = itertools.count(1000)

    def _poll_fault(self, site: str):
        if self.faults is not None:
            return self.faults.poll(site)
        return None

    # -- lifecycle ------------------------------------------------------

    def spawn(self, image: str, image_bytes: int,
              parent_pid: int | None = None) -> ProcessRecord:
        """fork+exec a fresh process: the slowest mechanism's unit cost."""
        cost = self.costs.spawn_cost(image_bytes)
        fault = self._poll_fault("spawn")
        if fault is not None:
            # A transient EAGAIN still burns the attempt's time.
            self.clock.advance(cost)
            self.stats.failed_spawns += 1
            self.stats.spawn_ns += cost
            raise fault
        self.clock.advance(cost)
        self.stats.spawns += 1
        self.stats.spawn_ns += cost
        record = self._register(image, parent_pid)
        if self.tracer.enabled:
            self.tracer.span_at(
                "kernel.spawn", self.clock.now_ns - cost, self.clock.now_ns,
                pid=record.pid, image=image,
            )
        return record

    def fork(self, parent: ProcessRecord, footprint_bytes: int) -> ProcessRecord:
        """fork() from a forkserver parent; cost scales with its footprint."""
        cost = self.costs.fork_cost(footprint_bytes)
        fault = self._poll_fault("fork")
        if fault is not None:
            self.clock.advance(cost)
            self.stats.failed_forks += 1
            self.stats.fork_ns += cost
            raise fault
        self.clock.advance(cost)
        self.stats.forks += 1
        self.stats.fork_ns += cost
        record = self._register(parent.image, parent.pid)
        if self.tracer.enabled:
            self.tracer.span_at(
                "kernel.fork", self.clock.now_ns - cost, self.clock.now_ns,
                pid=record.pid, parent_pid=parent.pid,
            )
        return record

    def charge_cow(self, bytes_written: int) -> None:
        """Copy-on-write page copies triggered by a forked child's writes."""
        cost = self.costs.cow_cost(bytes_written)
        self.clock.advance(cost)
        self.stats.cow_ns += cost

    def reap(self, process: ProcessRecord, exit_code: int | None,
             crashed: bool = False, fresh: bool = False) -> None:
        """Tear a process down and account its exit."""
        cost = self.costs.teardown_fresh_ns if fresh else self.costs.teardown_child_ns
        self.clock.advance(cost)
        self.stats.teardowns += 1
        self.stats.teardown_ns += cost
        process.state = ProcessState.CRASHED if crashed else ProcessState.EXITED
        process.exit_code = exit_code
        process.ended_at_ns = self.clock.now_ns
        if self.tracer.enabled:
            self.tracer.span_at(
                "kernel.teardown", self.clock.now_ns - cost, self.clock.now_ns,
                pid=process.pid, crashed=crashed, fresh=fresh,
            )

    def _register(self, image: str, parent_pid: int | None) -> ProcessRecord:
        record = ProcessRecord(
            pid=next(self._pids),
            parent_pid=parent_pid,
            image=image,
            spawned_at_ns=self.clock.now_ns,
        )
        self.processes[record.pid] = record
        return record

    # -- misc charging ----------------------------------------------------

    def charge_dispatch(self) -> None:
        """Per-test-case fuzzer<->target plumbing (all mechanisms)."""
        self.clock.advance(self.costs.dispatch_ns)

    def charge(self, ns: int) -> None:
        self.clock.advance(ns)

    def live_process_count(self) -> int:
        return sum(
            1 for p in self.processes.values() if p.state is ProcessState.RUNNING
        )
