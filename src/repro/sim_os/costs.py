"""Calibrated cost model for simulated process management.

All costs are in *virtual nanoseconds*.  The absolute values are chosen
to sit in the right order of magnitude for a Linux machine of the
paper's era (fork ~tens of microseconds, process spawn ~hundreds of
microseconds, byte copies ~4 B/ns) — but the experiments only rely on
the *relationships* between them:

    spawn+exec  >>  fork+teardown  >>  ClosureX restore  >  bare loop

which is the execution-mechanism spectrum of the paper's §2.  Table 5's
2.4-4.8x speedup band then emerges from how large each target's
per-test-case execution cost is relative to the fork overhead, rather
than from per-target fudge factors.
"""

from __future__ import annotations

from dataclasses import dataclass

PAGE_SIZE = 4096


@dataclass(frozen=True)
class CostModel:
    """Virtual-time costs of kernel and runtime operations."""

    # Fresh process execution: fork+exec+loader+dynamic linking.
    spawn_base_ns: int = 420_000
    exec_image_per_byte_ns_x1000: int = 50       # 0.05 ns per image byte
    teardown_fresh_ns: int = 30_000

    # Forkserver: fork(), CoW page management, child teardown.
    fork_base_ns: int = 14_000
    fork_per_page_ns: int = 9                    # PTE copy per mapped page
    cow_fault_per_page_ns: int = 520             # first write to a page
    # Every forked child dirties a baseline set of pages before and
    # while running (its stack, allocator metadata, libc data), no
    # matter how little the target itself writes.
    cow_floor_pages: int = 12
    teardown_child_ns: int = 11_000

    # Common per-test-case fuzzer plumbing (shared by every mechanism):
    # write the test case, signal the target, read the status.
    dispatch_ns: int = 3_200

    # Forkserver control-pipe protocol (AFL's ctl/status fd pair): the
    # one-time hello exchange at boot and the per-fork write/read round
    # trip.  Small next to fork_base_ns, as on a real kernel.
    pipe_handshake_ns: int = 2_400
    pipe_roundtrip_ns: int = 900

    # Persistent-loop mechanics.
    loop_iteration_ns: int = 140                 # __AFL_LOOP bookkeeping
    setjmp_ns: int = 60

    # ClosureX state restoration.  restore_base_ns is the full
    # fixed cost of a restore pass; walking the (possibly empty) chunk
    # map and fd table accounts for heap_sweep_base_ns and
    # fd_sweep_base_ns of it, the rest is loop/bookkeeping floor.  The
    # pollution-aware harness subtracts a component when static
    # analysis proves the matching sweep can never find anything.
    restore_base_ns: int = 250
    heap_sweep_base_ns: int = 45                 # chunk-map traversal floor
    fd_sweep_base_ns: int = 35                   # fd-table traversal floor
    global_restore_per_byte_x1000: int = 250     # 0.25 ns/B ~ 4 B/ns memcpy
    heap_sweep_per_chunk_ns: int = 55
    fd_close_ns: int = 130
    fd_rewind_ns: int = 45

    # State-integrity sentinel.  A digest is a structural CRC walk over
    # the four ClosureX state dimensions — far cheaper than a restore
    # (hardware CRC32 streams at ~10+ B/ns; the per-entry terms model
    # the pointer chasing, not the hashing).  Repair re-runs one
    # dimension's restore sweep; its per-item work is charged at the
    # matching restore rates, on top of this fixed dispatch floor.
    # Shadow replay costs are dominated by the throwaway VM's own
    # execution (charged at full price), plus this dispatch overhead
    # for building/tearing down the comparison.
    digest_base_ns: int = 80
    digest_per_chunk_ns: int = 7
    digest_per_handle_ns: int = 6
    digest_global_per_byte_x1000: int = 90       # ~0.09 ns/B CRC stream
    integrity_repair_base_ns: int = 160
    shadow_dispatch_ns: int = 1_800

    # -- derived helpers -------------------------------------------------

    def spawn_cost(self, image_bytes: int) -> int:
        """Create + exec a fresh process for a binary of *image_bytes*."""
        return self.spawn_base_ns + (image_bytes * self.exec_image_per_byte_ns_x1000) // 1000

    def fork_cost(self, footprint_bytes: int) -> int:
        """fork() a parent with *footprint_bytes* of mapped memory."""
        pages = footprint_bytes // PAGE_SIZE + 1
        return self.fork_base_ns + pages * self.fork_per_page_ns

    def cow_cost(self, bytes_written: int) -> int:
        """Copy-on-write faults triggered by *bytes_written* of stores."""
        pages = bytes_written // PAGE_SIZE + (1 if bytes_written else 0)
        return max(pages, self.cow_floor_pages) * self.cow_fault_per_page_ns

    def closurex_restore_cost(
        self, section_bytes: int, leaked_chunks: int,
        closed_fds: int, rewound_fds: int,
        skip_heap_sweep: bool = False, skip_fd_sweep: bool = False,
    ) -> int:
        """Fine-grain restoration after one test case.

        The skip flags model a harness that elides a sweep entirely
        because static analysis proved the dimension clean; they
        subtract that sweep's share of the fixed restore cost.
        Defaults leave the classic full-restore price unchanged.
        """
        base = self.restore_base_ns
        if skip_heap_sweep:
            base -= self.heap_sweep_base_ns
        if skip_fd_sweep:
            base -= self.fd_sweep_base_ns
        return (
            base
            + (section_bytes * self.global_restore_per_byte_x1000) // 1000
            + leaked_chunks * self.heap_sweep_per_chunk_ns
            + closed_fds * self.fd_close_ns
            + rewound_fds * self.fd_rewind_ns
        )

    def state_digest_cost(
        self, heap_chunks: int, open_handles: int, section_bytes: int,
    ) -> int:
        """One incremental digest of the four state dimensions."""
        return (
            self.digest_base_ns
            + heap_chunks * self.digest_per_chunk_ns
            + open_handles * self.digest_per_handle_ns
            + (section_bytes * self.digest_global_per_byte_x1000) // 1000
        )

    def integrity_repair_cost(
        self, swept_chunks: int, closed_fds: int, rewound_fds: int,
        section_bytes: int,
    ) -> int:
        """Targeted re-run of one or more restore sweeps after a
        detected leak — same per-item rates as the restore itself."""
        return (
            self.integrity_repair_base_ns
            + swept_chunks * self.heap_sweep_per_chunk_ns
            + closed_fds * self.fd_close_ns
            + rewound_fds * self.fd_rewind_ns
            + (section_bytes * self.global_restore_per_byte_x1000) // 1000
        )


DEFAULT_COSTS = CostModel()
