"""Simulated OS: virtual time, processes, fork/CoW cost accounting."""

from repro.sim_os.costs import DEFAULT_COSTS, PAGE_SIZE, CostModel
from repro.sim_os.kernel import (
    Kernel,
    KernelStats,
    ProcessRecord,
    ProcessState,
    VirtualClock,
)

__all__ = [
    "DEFAULT_COSTS", "PAGE_SIZE", "CostModel",
    "Kernel", "KernelStats", "ProcessRecord", "ProcessState", "VirtualClock",
]
