"""Simulated OS: virtual time, processes, pipes, fork/CoW accounting."""

from repro.sim_os.costs import DEFAULT_COSTS, PAGE_SIZE, CostModel
from repro.sim_os.kernel import (
    Kernel,
    KernelStats,
    ProcessRecord,
    ProcessState,
    VirtualClock,
)
from repro.sim_os.pipes import (
    FORKSRV_HELLO,
    ForkserverChannel,
    PipeBroken,
    SimPipe,
)

__all__ = [
    "DEFAULT_COSTS", "PAGE_SIZE", "CostModel",
    "Kernel", "KernelStats", "ProcessRecord", "ProcessState", "VirtualClock",
    "FORKSRV_HELLO", "ForkserverChannel", "PipeBroken", "SimPipe",
]
