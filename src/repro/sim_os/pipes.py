"""Simulated forkserver control pipes (AFL's ctl/status fd pair).

A real AFL++ forkserver talks to the fuzzer over two pipes: at boot the
server writes a four-byte hello the fuzzer must read and acknowledge
(the *handshake*), and per test case the fuzzer writes a "go" word and
reads back the child pid and, later, its wait status (the *round
trip*).  Both operations can fail transiently in production — a
half-dead server, an fd squeeze, a signal mid-``read`` — and the
fuzzer must treat that as "respawn the server", never as target
behaviour.

This module models exactly that surface.  :class:`SimPipe` is a byte
channel with an explicit ``broken`` state; :class:`ForkserverChannel`
implements the handshake / round-trip protocol on top of two pipes,
charges the cost model for every exchange, and — like the kernel —
polls an optional duck-typed ``faults`` object so the chaos plane can
drop the pipe at a scheduled occurrence.  A drop surfaces as
:class:`PipeBroken` (or the injector's own exception), which the
supervision layer converts into a server respawn rather than a
campaign abort.
"""

from __future__ import annotations

from repro.sim_os.costs import DEFAULT_COSTS, CostModel

#: The forkserver's hello word ("FORK" little-endian), standing in for
#: AFL's FS_OPT version/option magic.
FORKSRV_HELLO = 0x4B524F46


class PipeBroken(Exception):
    """Read or write on a pipe whose other end is gone (EPIPE)."""

    def __init__(self, detail: str = "EPIPE"):
        self.site = "pipe"
        self.detail = detail
        super().__init__(f"broken pipe: {detail}")


class SimPipe:
    """One unidirectional byte channel between fuzzer and forkserver."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self.broken = False
        self.bytes_written = 0

    def write(self, data: bytes) -> None:
        if self.broken:
            raise PipeBroken("write on broken pipe")
        self.buffer.extend(data)
        self.bytes_written += len(data)

    def read(self, size: int) -> bytes:
        if self.broken:
            raise PipeBroken("read on broken pipe")
        if len(self.buffer) < size:
            # A short read from a control pipe means the peer died.
            raise PipeBroken(f"short read: wanted {size}, had {len(self.buffer)}")
        data = bytes(self.buffer[:size])
        del self.buffer[:size]
        return data

    def sever(self) -> None:
        """The peer end vanished; all further I/O raises."""
        self.broken = True
        self.buffer.clear()


class ForkserverChannel:
    """The fuzzer<->forkserver control protocol over a ctl/status pair.

    *kernel* supplies the virtual clock, the cost model, and the
    optional chaos ``faults`` hook; the channel never spawns anything
    itself — executors sequence ``handshake()`` after spawning the
    server and ``fork_roundtrip()`` around each ``kernel.fork``.
    """

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.ctl = SimPipe()      # fuzzer -> server
        self.status = SimPipe()   # server -> fuzzer
        self.established = False
        self.handshakes = 0
        self.roundtrips = 0

    @property
    def costs(self) -> CostModel:
        return getattr(self.kernel, "costs", DEFAULT_COSTS)

    def _poll_fault(self):
        faults = getattr(self.kernel, "faults", None)
        if faults is not None:
            return faults.poll("pipe")
        return None

    def handshake(self) -> None:
        """Boot-time hello exchange; raises on a dropped pipe."""
        self.kernel.charge(self.costs.pipe_handshake_ns)
        fault = self._poll_fault()
        if fault is not None:
            # The server died (or the pipe collapsed) mid-hello: the
            # fuzzer sees a short read and must respawn the server.
            self.status.sever()
            self.ctl.sever()
            self.established = False
            raise fault
        self.status.write(FORKSRV_HELLO.to_bytes(4, "little"))
        hello = int.from_bytes(self.status.read(4), "little")
        if hello != FORKSRV_HELLO:
            raise PipeBroken(f"bad hello 0x{hello:08x}")
        self.ctl.write(hello.to_bytes(4, "little"))
        self.ctl.read(4)  # server consumes the ack
        self.established = True
        self.handshakes += 1

    def fork_roundtrip(self, child_pid: int) -> int:
        """Per-test-case go/pid exchange; returns the child pid read back."""
        if not self.established:
            raise PipeBroken("roundtrip before handshake")
        self.kernel.charge(self.costs.pipe_roundtrip_ns)
        fault = self._poll_fault()
        if fault is not None:
            self.status.sever()
            self.ctl.sever()
            self.established = False
            raise fault
        self.ctl.write(b"\x00\x00\x00\x00")          # "go" word
        self.ctl.read(4)                             # server consumes it
        self.status.write(child_pid.to_bytes(4, "little"))
        pid = int.from_bytes(self.status.read(4), "little")
        self.roundtrips += 1
        return pid

    def reset(self) -> None:
        """Fresh pipes for a respawned server (old fds are closed)."""
        self.ctl = SimPipe()
        self.status = SimPipe()
        self.established = False
