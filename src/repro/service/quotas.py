"""Per-tenant quota accounting, charged in virtual nanoseconds.

Multi-tenant fairness on this platform is an *accounting* problem, not
a scheduling one: every job runs on its own virtual clock, so the fair
unit to meter is the virtual time a tenant's jobs consume — the same
unit campaign budgets are expressed in.  The ledger implements
two-phase accounting, dispatcher-style:

- **admission** reserves the job's full ``budget_ns`` against the
  tenant's quota (reject up front rather than kill mid-flight);
- **charging** converts reservation into consumption as the job's
  virtual clock actually advances (plus any service-observed budget
  overrun injected by the chaos plane's ``clock-overrun`` site);
- **settlement** releases the reservation when the job reaches a
  terminal state, refunding whatever a quarantined job never ran.

Everything is plain integers updated on the event loop — no locks, no
float drift — and the whole ledger is reconstructible from the job
journal, which is how the server's crash recovery restores tenant
accounting after a ``kill -9``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class QuotaExceeded(RuntimeError):
    """Admission refused: the reservation would overrun the quota."""

    def __init__(self, tenant: str, requested_ns: int, available_ns: int):
        super().__init__(
            f"tenant {tenant!r} requested {requested_ns} virtual ns "
            f"but only {available_ns} remain"
        )
        self.tenant = tenant
        self.requested_ns = requested_ns
        self.available_ns = available_ns


@dataclass
class TenantAccount:
    """One tenant's meters (all in virtual nanoseconds / job counts)."""

    tenant: str
    quota_ns: int
    reserved_ns: int = 0
    consumed_ns: int = 0
    overrun_ns: int = 0
    submitted: int = 0
    accepted: int = 0
    rejected_quota: int = 0
    rejected_queue: int = 0
    completed: int = 0
    quarantined: int = 0
    # Per-job consumption high-water marks: charging is monotone per
    # job, so a step replayed from a checkpoint never double-bills.
    job_consumed: dict[str, int] = field(default_factory=dict)

    @property
    def available_ns(self) -> int:
        return self.quota_ns - self.reserved_ns - self.consumed_ns

    def snapshot(self) -> dict:
        """Wire-shaped view for the ``tenants`` RPC."""
        return {
            "tenant": self.tenant,
            "quota_ns": self.quota_ns,
            "reserved_ns": self.reserved_ns,
            "consumed_ns": self.consumed_ns,
            "available_ns": self.available_ns,
            "overrun_ns": self.overrun_ns,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected_quota": self.rejected_quota,
            "rejected_queue": self.rejected_queue,
            "completed": self.completed,
            "quarantined": self.quarantined,
        }


class QuotaLedger:
    """All tenants' accounts plus the admission rule (module docstring)."""

    def __init__(self, default_quota_ns: int,
                 tenant_quotas: dict[str, int] | None = None):
        if default_quota_ns < 1:
            raise ValueError("default_quota_ns must be >= 1")
        self.default_quota_ns = default_quota_ns
        self.tenant_quotas = dict(tenant_quotas or {})
        self.accounts: dict[str, TenantAccount] = {}

    def account(self, tenant: str) -> TenantAccount:
        """The tenant's account, created on first touch."""
        existing = self.accounts.get(tenant)
        if existing is None:
            existing = TenantAccount(
                tenant=tenant,
                quota_ns=self.tenant_quotas.get(
                    tenant, self.default_quota_ns
                ),
            )
            self.accounts[tenant] = existing
        return existing

    # -- two-phase accounting -------------------------------------------

    def reserve(self, tenant: str, job_id: str, budget_ns: int,
                force: bool = False) -> None:
        """Admission: reserve *budget_ns* or raise :class:`QuotaExceeded`.

        *force* bypasses the admission check — used only by journal
        replay, where the job was already accepted before the crash and
        the ledger is being reconstructed, never re-adjudicated.
        """
        account = self.account(tenant)
        if not force and budget_ns > account.available_ns:
            account.rejected_quota += 1
            raise QuotaExceeded(tenant, budget_ns, account.available_ns)
        account.reserved_ns += budget_ns
        account.accepted += 1
        account.job_consumed.setdefault(job_id, 0)

    def charge(self, tenant: str, job_id: str, consumed_ns: int) -> None:
        """Record a job's cumulative virtual consumption (monotone: a
        step replayed from a checkpoint re-reports an instant already
        billed and charges nothing)."""
        account = self.account(tenant)
        previous = account.job_consumed.get(job_id, 0)
        if consumed_ns <= previous:
            return
        delta = consumed_ns - previous
        account.job_consumed[job_id] = consumed_ns
        account.consumed_ns += delta
        account.reserved_ns = max(0, account.reserved_ns - delta)

    def charge_overrun(self, tenant: str, overrun_ns: int) -> None:
        """Bill a service-observed budget overrun (chaos
        ``clock-overrun`` site): pure service-side accounting — the
        job's own virtual timeline is never touched."""
        account = self.account(tenant)
        account.overrun_ns += overrun_ns
        account.consumed_ns += overrun_ns

    def settle(self, tenant: str, job_id: str, budget_ns: int,
               quarantined: bool = False) -> None:
        """Terminal-state settlement: release the unconsumed remainder
        of the job's reservation back to the tenant."""
        account = self.account(tenant)
        consumed = account.job_consumed.get(job_id, 0)
        remainder = max(0, budget_ns - consumed)
        account.reserved_ns = max(0, account.reserved_ns - remainder)
        if quarantined:
            account.quarantined += 1
        else:
            account.completed += 1

    # -- views ----------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Every account's wire view, tenant-sorted."""
        return [
            self.accounts[tenant].snapshot()
            for tenant in sorted(self.accounts)
        ]
