"""Campaign-as-a-service: the fault-tolerant async fuzzing server.

This package turns the repository's one-shot campaign drivers into a
**long-lived multi-tenant service**: a single asyncio process owning a
cooperative pool of campaign workers, accepting jobs ``(target,
config, budget_ns, tenant)`` over a newline-JSON-RPC surface, streaming
live AFL-style stats per job, and surviving anything the chaos plane —
or ``kill -9`` — throws at it without losing an accepted job or
changing a single result bit.

The correctness keystone is inherited from the rest of the stack:
campaigns are deterministic functions of ``(target, mechanism, seed,
budget_ns)`` on their own virtual clocks, and service-plane failures
(lost dispatches, wedged workers, torn checkpoint writes, budget
overruns, process death) are only ever allowed to cost *wall time* —
never to touch a campaign's virtual clock or RNG.  A job's
:meth:`~repro.fuzzing.Campaign.state_digest` is therefore invariant to
every fault the service absorbs, which is what the golden crash-
recovery tests check bit-for-bit.

Modules:

- :mod:`repro.service.protocol` — newline-JSON-RPC framing + client;
- :mod:`repro.service.quotas` — per-tenant virtual-ns accounting;
- :mod:`repro.service.scheduler` — job table, bounded queue, reconcile;
- :mod:`repro.service.recovery` — fsynced journal + checkpoint layout;
- :mod:`repro.service.worker_pool` — cooperative workers + the
  restart-step → respawn-worker → quarantine-job degradation ladder;
- :mod:`repro.service.server` — admission, the RPC surface, recovery,
  drain; ``python -m repro.service`` is the CLI.
"""

from repro.service.protocol import (
    ProtocolError,
    ServiceClient,
    ServiceError,
    call_sync,
)
from repro.service.quotas import QuotaExceeded, QuotaLedger, TenantAccount
from repro.service.recovery import JobJournal, ServiceState
from repro.service.scheduler import (
    JobRecord,
    JobScheduler,
    JobSpec,
    JobState,
    QueueFull,
)
from repro.service.server import FuzzService, ServiceConfig, ServicePolicy
from repro.service.worker_pool import WorkerPool

__all__ = [
    "ProtocolError", "ServiceClient", "ServiceError", "call_sync",
    "QuotaExceeded", "QuotaLedger", "TenantAccount",
    "JobJournal", "ServiceState",
    "JobRecord", "JobScheduler", "JobSpec", "JobState", "QueueFull",
    "FuzzService", "ServiceConfig", "ServicePolicy",
    "WorkerPool",
]
