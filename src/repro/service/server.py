"""The fuzzing server: admission, RPC surface, recovery, drain.

:class:`FuzzService` is the long-lived asyncio process at the centre of
campaign-as-a-service: it listens on a TCP endpoint speaking the
newline-JSON-RPC protocol, admits tenant jobs through the quota ledger
and the bounded queue, dispatches them to the cooperative worker pool,
and keeps every accepted job durable in the journal so that a
``kill -9`` at any instant loses nothing.

The life of a submit, in order — the order *is* the durability
contract:

1. validate the spec (``BAD_REQUEST`` on nonsense);
2. check the queue bound (``QUEUE_FULL`` + ``retry_after_ms``);
3. reserve tenant quota (``QUOTA_EXCEEDED`` + ``retry_after_ms``);
4. **journal the acceptance with fsync**;
5. enqueue for dispatch;
6. answer the client with the job id.

Steps 1–3 reject with no state created; once step 4 returns, the job
survives any crash.  On start the server replays the journal: terminal
jobs become finished rows (digests intact), open jobs are re-admitted
in submission order and resume from their newest loadable checkpoint
generation — bit-identical to the uninterrupted run, because
service-plane faults never touch a campaign's virtual clock.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.chaos.plan import FaultInjector, FaultPlan
from repro.service import protocol
from repro.service.protocol import (
    ProtocolError,
    ServiceError,
    encode_frame,
    read_frame,
)
from repro.service.quotas import QuotaExceeded, QuotaLedger
from repro.service.recovery import ServiceState
from repro.service.scheduler import (
    JobRecord,
    JobScheduler,
    JobSpec,
    JobState,
    QueueFull,
)
from repro.service.worker_pool import WorkerPool
from repro.telemetry import (
    NULL_TELEMETRY,
    TelemetryConfig,
    WallClock,
    build_telemetry,
)


@dataclass
class ServicePolicy:
    """The worker pool's robustness knobs (failure ladder + cadence)."""

    slice_ns: int = 2_000_000          # virtual ns per cooperative slice
    checkpoint_every_slices: int = 2   # slice cadence of durable ckpts
    checkpoint_keep: int = 2           # rotated generations per job
    watchdog_s: float = 30.0           # wall-clock deadline per slice
    backoff_base_s: float = 0.02       # ladder backoff: base * 2**strikes
    backoff_cap_s: float = 0.5         # ... capped here
    restart_step_limit: int = 2        # strikes handled by rung 1
    max_respawns: int = 1              # rung-2 budget before quarantine


@dataclass
class ServiceConfig:
    """Everything one server instance needs to run."""

    state_dir: str
    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral, advertised in
    workers: int = 2                    # endpoint.json
    max_queued: int = 8                 # backlog bound (backpressure)
    default_quota_ns: int = 2_000_000_000
    tenant_quotas: dict[str, int] = field(default_factory=dict)
    retry_after_ms: int = 500
    reconcile_s: float = 0.1            # queue-drop healing cadence
    chaos_plan: FaultPlan | None = None  # service-plane fault schedule
    trace_path: str | None = None       # JSONL trace of service events
    policy: ServicePolicy = field(default_factory=ServicePolicy)


class FuzzService:
    """One serving instance (see module docstring).

    Use :meth:`run` as the whole lifecycle (start, serve until asked to
    stop, clean up), or :meth:`start` / :meth:`request_stop` /
    :meth:`cleanup` individually for in-process embedding.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.state = ServiceState(config.state_dir)
        self.faults = (
            FaultInjector(config.chaos_plan)
            if config.chaos_plan is not None else None
        )
        self.telemetry = (
            build_telemetry(
                TelemetryConfig(
                    enabled=True, sink="jsonl",
                    jsonl_path=config.trace_path,
                ),
                WallClock(),
            )
            if config.trace_path is not None else NULL_TELEMETRY
        )
        self.ledger = QuotaLedger(
            config.default_quota_ns, config.tenant_quotas
        )
        self.scheduler = JobScheduler(
            config.max_queued, faults=self.faults,
            retry_after_ms=config.retry_after_ms,
        )
        self.pool = WorkerPool(self)
        self.draining = False
        self.recovered_jobs = 0
        self.endpoint: tuple[str, int] | None = None
        self.started = asyncio.Event()
        self._stop = asyncio.Event()
        self._server = None
        self._reconcile_task = None

    # -- telemetry shims --------------------------------------------------

    def note_event(self, name: str, **attrs) -> None:
        """One service-plane trace event + matching counter."""
        self.telemetry.tracer.event(name, **attrs)
        self.telemetry.metrics.counter(name).inc()

    def note_tenant(self, tenant: str, what: str) -> None:
        """Per-tenant counter (``service.tenant.<tenant>.<what>``)."""
        self.telemetry.metrics.counter(
            f"service.tenant.{tenant}.{what}"
        ).inc()

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Recover, spawn workers, bind the socket, advertise it."""
        self.scheduler.bind(asyncio.Queue())
        self._recover()
        await self.pool.start(self.config.workers)
        self._reconcile_task = asyncio.create_task(
            self._reconcile_loop(), name="svc-reconcile"
        )
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        port = self._server.sockets[0].getsockname()[1]
        self.endpoint = (self.config.host, port)
        self.state.write_endpoint(*self.endpoint)
        self.note_event(
            "service.start", port=port, recovered=self.recovered_jobs
        )
        self.started.set()

    async def run(self) -> None:
        """The whole lifecycle: start, serve until stopped, clean up."""
        await self.start()
        try:
            await self._stop.wait()
        finally:
            await self.cleanup()

    def request_stop(self) -> None:
        """Ask the serving loop to wind down (idempotent)."""
        self._stop.set()

    async def cleanup(self) -> None:
        """Stop workers, close the socket, flush telemetry.  Workers
        stop first so a crash-style stop (no drain) cannot let jobs
        race to completion while the socket winds down."""
        if self.pool.tasks:
            self.pool.abort()
            await asyncio.gather(
                *self.pool.tasks, return_exceptions=True
            )
            self.pool.tasks = []
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._reconcile_task is not None:
            self._reconcile_task.cancel()
            await asyncio.gather(
                self._reconcile_task, return_exceptions=True
            )
            self._reconcile_task = None
        self.telemetry.flush()
        self.telemetry.close()

    # -- recovery ---------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal into the job table and the ledger.

        Terminal jobs come back as finished rows (their digests are the
        golden baseline); open jobs are re-admitted with their original
        ids in original submission order, so the recovered server is
        indistinguishable — digest for digest — from one that never
        died.
        """
        open_jobs, terminal = self.state.replay()
        for job_id in sorted(terminal):
            record = terminal[job_id]
            spec = JobSpec.from_params(record["spec"])
            self.scheduler.note_recovered_id(job_id)
            row = JobRecord(job_id=job_id, spec=spec)
            row.state = (
                JobState.DONE if record["kind"] == "completed"
                else JobState.QUARANTINED
            )
            row.digest = record.get("digest")
            row.execs = record.get("execs", 0)
            row.edges = record.get("edges", 0)
            row.unique_crashes = record.get("unique_crashes", 0)
            row.clock_ns = record.get("elapsed_ns", 0)
            row.quarantine_reason = record.get("reason")
            row.dispatched = True
            self.scheduler.jobs[job_id] = row
            account = self.ledger.account(spec.tenant)
            account.submitted += 1
            self.ledger.reserve(
                spec.tenant, job_id, spec.budget_ns, force=True
            )
            if row.state is JobState.DONE:
                self.ledger.charge(
                    spec.tenant, job_id,
                    record.get("elapsed_ns", spec.budget_ns),
                )
            self.ledger.settle(
                spec.tenant, job_id, spec.budget_ns,
                quarantined=row.state is JobState.QUARANTINED,
            )
        for record in open_jobs:
            job_id = record["job_id"]
            spec = JobSpec.from_params(record["spec"])
            self.scheduler.note_recovered_id(job_id)
            account = self.ledger.account(spec.tenant)
            account.submitted += 1
            self.ledger.reserve(
                spec.tenant, job_id, spec.budget_ns, force=True
            )
            self.scheduler.admit(spec, job_id=job_id)
            self.recovered_jobs += 1
            self.note_event(
                "service.job.recovered", job=job_id, tenant=spec.tenant
            )

    async def _reconcile_loop(self) -> None:
        """Periodically heal lost dispatches (chaos ``queue-drop``)."""
        while True:
            await asyncio.sleep(self.config.reconcile_s)
            recovered = self.scheduler.reconcile()
            if recovered:
                self.note_event(
                    "service.reconcile.requeued", count=recovered
                )

    # -- job terminal states (called by the worker pool) ------------------

    async def complete_job(self, job: JobRecord, digest: str,
                           result) -> None:
        """Journal a job done (durably) and settle its quota."""
        spec = job.spec
        job.digest = digest
        job.state = JobState.DONE
        elapsed_ns = self.ledger.account(spec.tenant).job_consumed.get(
            job.job_id, 0
        )
        self.state.journal.append({
            "kind": "completed",
            "job_id": job.job_id,
            "tenant": spec.tenant,
            "spec": spec.to_wire(),
            "digest": digest,
            "execs": job.execs,
            "edges": job.edges,
            "unique_crashes": job.unique_crashes,
            "elapsed_ns": elapsed_ns,
        })
        self.ledger.settle(spec.tenant, job.job_id, spec.budget_ns)
        job.version += 1
        self.note_event(
            "service.job.complete", job=job.job_id, tenant=spec.tenant,
            digest=digest, execs=job.execs,
        )
        self.note_tenant(spec.tenant, "completed")

    async def quarantine_job(self, job: JobRecord, reason: str) -> None:
        """Rung 3 of the ladder: journal the job out of the system."""
        spec = job.spec
        job.state = JobState.QUARANTINED
        job.quarantine_reason = reason
        self.state.journal.append({
            "kind": "quarantined",
            "job_id": job.job_id,
            "tenant": spec.tenant,
            "spec": spec.to_wire(),
            "reason": reason,
        })
        self.ledger.settle(
            spec.tenant, job.job_id, spec.budget_ns, quarantined=True
        )
        job.version += 1
        self.note_event(
            "service.job.quarantine", job=job.job_id,
            tenant=spec.tenant, reason=reason,
        )
        self.note_tenant(spec.tenant, "quarantined")

    # -- the RPC surface --------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as error:
                    writer.write(encode_frame({
                        "id": None,
                        "error": ServiceError(
                            protocol.BAD_REQUEST, str(error)
                        ).to_wire(),
                    }))
                    await writer.drain()
                    break
                if frame is None:
                    break
                request_id = frame.get("id")
                method = frame.get("method")
                params = frame.get("params") or {}
                try:
                    if method == "watch":
                        result = await self._rpc_watch(params, writer)
                    else:
                        result = await self._dispatch(method, params)
                    response = {"id": request_id, "result": result}
                except ServiceError as error:
                    response = {
                        "id": request_id, "error": error.to_wire()
                    }
                except (TypeError, ValueError) as error:
                    response = {
                        "id": request_id,
                        "error": ServiceError(
                            protocol.BAD_REQUEST, str(error)
                        ).to_wire(),
                    }
                except (ConnectionResetError, BrokenPipeError):
                    break
                except Exception as error:
                    response = {
                        "id": request_id,
                        "error": ServiceError(
                            protocol.INTERNAL, repr(error)
                        ).to_wire(),
                    }
                writer.write(encode_frame(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass   # loop shutdown mid-connection: end the task cleanly
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(self, method: str, params: dict) -> dict:
        handlers = {
            "ping": self._rpc_ping,
            "submit": self._rpc_submit,
            "status": self._rpc_status,
            "stats": self._rpc_stats,
            "tenants": self._rpc_tenants,
            "drain": self._rpc_drain,
            "shutdown": self._rpc_shutdown,
        }
        handler = handlers.get(method)
        if handler is None:
            raise ServiceError(
                protocol.UNKNOWN_METHOD, f"unknown method {method!r}"
            )
        return await handler(params)

    async def _rpc_ping(self, params: dict) -> dict:
        return {
            "ok": True,
            "draining": self.draining,
            "backlog": self.scheduler.backlog(),
        }

    async def _rpc_submit(self, params: dict) -> dict:
        """Admission (see module docstring for the ordering contract)."""
        try:
            spec = JobSpec.from_params(params)
        except (TypeError, ValueError) as error:
            raise ServiceError(protocol.BAD_REQUEST, str(error))
        account = self.ledger.account(spec.tenant)
        account.submitted += 1
        self.note_tenant(spec.tenant, "submitted")
        if self.draining:
            raise ServiceError(
                protocol.DRAINING, "server is draining; not accepting jobs"
            )
        try:
            self.scheduler.check_capacity()
        except QueueFull as error:
            account.rejected_queue += 1
            self.note_tenant(spec.tenant, "rejected_queue")
            raise ServiceError(
                protocol.QUEUE_FULL, str(error),
                retry_after_ms=error.retry_after_ms,
            )
        job_id = self.scheduler.next_job_id()
        try:
            self.ledger.reserve(spec.tenant, job_id, spec.budget_ns)
        except QuotaExceeded as error:
            self.note_tenant(spec.tenant, "rejected_quota")
            raise ServiceError(
                protocol.QUOTA_EXCEEDED, str(error),
                retry_after_ms=self.config.retry_after_ms,
            )
        # The durability point: fsynced before the client hears "yes".
        self.state.journal.append({
            "kind": "accepted",
            "job_id": job_id,
            "tenant": spec.tenant,
            "spec": spec.to_wire(),
        })
        record = self.scheduler.admit(spec, job_id=job_id)
        self.note_event(
            "service.job.accept", job=job_id, tenant=spec.tenant,
            target=spec.target, budget_ns=spec.budget_ns,
        )
        self.note_tenant(spec.tenant, "accepted")
        return {"job_id": job_id, "state": record.state.value}

    def _job_or_raise(self, params: dict) -> JobRecord:
        job_id = params.get("job_id")
        job = self.scheduler.status(job_id) if job_id else None
        if job is None:
            raise ServiceError(
                protocol.UNKNOWN_JOB, f"unknown job {job_id!r}"
            )
        return job

    async def _rpc_status(self, params: dict) -> dict:
        if params.get("job_id"):
            return self._job_or_raise(params).to_wire()
        return {
            "jobs": self.scheduler.rows(params.get("tenant")),
            "tenants": self.ledger.snapshot(),
            "service": self._service_stats(),
        }

    def _service_stats(self) -> dict:
        return {
            "draining": self.draining,
            "backlog": self.scheduler.backlog(),
            "workers": sum(
                1 for task in self.pool.tasks if not task.done()
            ),
            "respawns": self.pool.respawns,
            "queue_drops_recovered": self.scheduler.queue_drops_recovered,
            "recovered_jobs": self.recovered_jobs,
        }

    async def _rpc_stats(self, params: dict) -> dict:
        """AFL-flavoured live stats for one job (fuzzer_stats shape)."""
        job = self._job_or_raise(params)
        last = job.samples[-1] if job.samples else {}
        return {
            "job": job.to_wire(),
            "fuzzer_stats": {
                "execs_done": job.execs,
                "execs_per_sec": last.get("execs_per_vsec", 0.0),
                "paths_total": job.corpus,
                "edges_found": job.edges,
                "unique_crashes": job.unique_crashes,
                "unique_hangs": job.unique_hangs,
                "run_time_vns": job.clock_ns,
            },
            "samples": job.samples[-64:],
        }

    async def _rpc_tenants(self, params: dict) -> dict:
        return {"tenants": self.ledger.snapshot()}

    async def _rpc_watch(self, params: dict,
                         writer: asyncio.StreamWriter) -> dict:
        """Stream ``job.sample`` notifications until the job is
        terminal; the terminating response is the final job row."""
        job = self._job_or_raise(params)
        last_version = 0
        while True:
            if job.version > last_version:
                last_version = job.version
                if job.samples:
                    writer.write(encode_frame({
                        "method": "job.sample",
                        "params": {
                            "job_id": job.job_id, **job.samples[-1]
                        },
                    }))
                    await writer.drain()
            if job.state.terminal:
                return job.to_wire()
            await asyncio.sleep(0.02)

    async def _rpc_drain(self, params: dict) -> dict:
        """Graceful drain: stop admitting, finish the backlog, stop the
        workers, wind the server down.  The response reports the final
        tally and is sent before the socket closes."""
        self.draining = True
        self.note_event("service.drain.start",
                        backlog=self.scheduler.backlog())
        while self.scheduler.backlog() > 0:
            await asyncio.sleep(0.05)
        await self.pool.stop()
        self.note_event("service.drain.done")
        self.request_stop()
        jobs = list(self.scheduler.jobs.values())
        return {
            "drained": True,
            "jobs": len(jobs),
            "completed": sum(
                1 for job in jobs if job.state is JobState.DONE
            ),
            "quarantined": sum(
                1 for job in jobs if job.state is JobState.QUARANTINED
            ),
        }

    async def _rpc_shutdown(self, params: dict) -> dict:
        """Fast-but-clean stop: in-flight jobs stay journal-accepted
        and resume from their checkpoints on the next start."""
        self.note_event("service.shutdown")
        self.request_stop()
        return {"ok": True, "backlog": self.scheduler.backlog()}
