"""The service wire protocol: newline-delimited JSON-RPC over streams.

One JSON object per line, both directions.  Requests carry ``{"id",
"method", "params"}``; the server answers with ``{"id", "result"}`` or
``{"id", "error": {"code", "message", ...}}``.  Streaming methods
(``watch``) interleave id-less **notifications** (``{"method":
"job.sample", "params": {...}}``) before the terminating response, so a
client reads sample lines as they are produced and knows the stream is
over when the line carrying its request id arrives.

The framing is deliberately the simplest thing that is robust over
asyncio streams: no lengths, no binary, no pipelining requirements —
a human can drive the server with ``nc`` — while staying structured
enough for the admission layer to express *backpressure* precisely:
``QUEUE_FULL`` and ``QUOTA_EXCEEDED`` rejections carry a
``retry_after_ms`` hint instead of letting the queue grow without
bound, fuzzbench-dispatcher style.
"""

from __future__ import annotations

import asyncio
import json

#: Maximum accepted line length (a submit with config is small; anything
#: bigger is a confused or hostile client).
MAX_LINE_BYTES = 1 << 20

# -- error codes --------------------------------------------------------

BAD_REQUEST = "BAD_REQUEST"
UNKNOWN_METHOD = "UNKNOWN_METHOD"
UNKNOWN_JOB = "UNKNOWN_JOB"
QUOTA_EXCEEDED = "QUOTA_EXCEEDED"
QUEUE_FULL = "QUEUE_FULL"
DRAINING = "DRAINING"
INTERNAL = "INTERNAL"


class ProtocolError(RuntimeError):
    """A malformed frame on the wire."""


class ServiceError(RuntimeError):
    """A structured error response from the server."""

    def __init__(self, code: str, message: str,
                 retry_after_ms: int | None = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms

    @classmethod
    def from_wire(cls, error: dict) -> "ServiceError":
        """Rebuild the client-side exception from an error payload."""
        return cls(
            error.get("code", INTERNAL),
            error.get("message", ""),
            error.get("retry_after_ms"),
        )

    def to_wire(self) -> dict:
        """The error payload as it travels in a response frame."""
        wire: dict = {"code": self.code, "message": self.message}
        if self.retry_after_ms is not None:
            wire["retry_after_ms"] = self.retry_after_ms
        return wire


def encode_frame(frame: dict) -> bytes:
    """One frame in canonical JSON, newline-terminated."""
    return (
        json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes) -> dict:
    """Parse one wire line; raises :class:`ProtocolError` on garbage."""
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}")
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame is {type(frame).__name__}, not object")
    return frame


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Next frame from the stream, or ``None`` at EOF."""
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("frame exceeds MAX_LINE_BYTES")
    return decode_frame(line)


class ServiceClient:
    """Asyncio client for one server connection.

    Requests are issued sequentially per connection (the CLI and tests
    open one connection per logical session); ``call`` blocks until the
    matching response id arrives, surfacing notifications to an
    optional callback on the way.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self._next_id = 1

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        """Open a client connection to a serving endpoint."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def call(self, method: str, params: dict | None = None,
                   on_notification=None) -> dict:
        """One request/response round trip.

        *on_notification* (``callable(method, params)``), when given,
        receives every id-less frame that arrives before the response —
        the ``watch`` streaming surface.  Raises :class:`ServiceError`
        for error responses.
        """
        request_id = self._next_id
        self._next_id += 1
        self.writer.write(encode_frame({
            "id": request_id, "method": method, "params": params or {},
        }))
        await self.writer.drain()
        while True:
            frame = await read_frame(self.reader)
            if frame is None:
                raise ProtocolError("connection closed mid-call")
            if "id" not in frame:
                if on_notification is not None:
                    on_notification(
                        frame.get("method", ""), frame.get("params", {})
                    )
                continue
            if frame["id"] != request_id:
                raise ProtocolError(
                    f"response id {frame['id']!r} != request {request_id}"
                )
            if "error" in frame:
                raise ServiceError.from_wire(frame["error"])
            return frame.get("result", {})

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass


def call_sync(host: str, port: int, method: str,
              params: dict | None = None, on_notification=None) -> dict:
    """Synchronous one-shot convenience used by the CLI subcommands."""
    async def _one_shot() -> dict:
        client = await ServiceClient.connect(host, port)
        try:
            return await client.call(method, params, on_notification)
        finally:
            await client.close()
    return asyncio.run(_one_shot())
