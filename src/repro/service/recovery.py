"""Crash recovery: the job journal and per-job checkpoint plumbing.

The durability contract of the service is: **an acknowledged job is
never lost**.  ``kill -9`` the server at any instant after a submit
response and a restart completes every accepted job with results
bit-identical to an uninterrupted run.  Two artifacts under the state
directory carry that contract:

- ``journal.jsonl`` — an append-only, fsync-per-record journal of job
  lifecycle events (``accepted`` / ``completed`` / ``quarantined``),
  canonical JSON, torn-tail tolerant exactly like the experiment
  platform's results store.  Acceptance is journaled *before* the
  submit response is sent.
- ``checkpoints/<job_id>.ckpt[.N]`` — RPRCKPT1 campaign checkpoints
  written on the service's slice cadence, with the standard CRC +
  rotation stack, so a restart resumes each in-flight job from its
  last durable instant and replays bit-identically.

Recovery replays the journal: terminal jobs are reloaded as completed
rows (their digests are the comparison baseline), accepted-but-open
jobs are re-admitted in original submission order and either resume
from their newest loadable checkpoint generation or — if none survives
(e.g. the chaos plane tore the only write) — restart from scratch,
which is digest-equivalent because campaigns are deterministic.
"""

from __future__ import annotations

import json
import os

from repro.fuzzing.checkpoint import save_state
from repro.store import AppendLog, atomic_write
from repro.store.log import canonical_line

__all__ = [
    "JobJournal", "ServiceState", "canonical_line", "checkpoint_job_state",
]


class JobJournal:
    """Append-only fsynced lifecycle journal (see module docstring).

    A thin wrapper over :class:`repro.store.AppendLog` pinned to the
    journal's protocol: every append is fsynced before it returns
    (journal-before-ack).
    """

    def __init__(self, path: str):
        self.path = path
        self._log = AppendLog(path, fsync_every=1)

    def append(self, record: dict) -> None:
        """Durably append one lifecycle record."""
        self._log.append(record, sync=True)

    def read(self) -> list[dict]:
        """All records (empty if absent); a torn tail is dropped, the
        valid prefix is the journal's state.  Corruption *before* the
        tail raises :class:`repro.store.LogCorruption` — replaying past
        silently missing lifecycle records could double-run or lose an
        acknowledged job, so the error (with its byte offset) is
        surfaced for ``python -m repro.store fsck --repair``."""
        return self._log.read()


class ServiceState:
    """Layout of one service's state directory."""

    def __init__(self, state_dir: str):
        self.state_dir = state_dir
        self.checkpoints_dir = os.path.join(state_dir, "checkpoints")
        os.makedirs(self.checkpoints_dir, exist_ok=True)
        self.journal = JobJournal(os.path.join(state_dir, "journal.jsonl"))

    def checkpoint_path(self, job_id: str) -> str:
        """The job's RPRCKPT1 checkpoint root (rotated generations)."""
        return os.path.join(self.checkpoints_dir, f"{job_id}.ckpt")

    @property
    def endpoint_path(self) -> str:
        """Where ``serve`` advertises its bound (host, port)."""
        return os.path.join(self.state_dir, "endpoint.json")

    def write_endpoint(self, host: str, port: int) -> None:
        """Atomically advertise the listening endpoint for clients."""
        atomic_write(
            self.endpoint_path,
            json.dumps({"host": host, "port": port}).encode("utf-8"),
        )

    def read_endpoint(self) -> tuple[str, int]:
        """The advertised (host, port) pair."""
        with open(self.endpoint_path, "r", encoding="utf-8") as handle:
            endpoint = json.load(handle)
        return endpoint["host"], int(endpoint["port"])

    # -- journal replay --------------------------------------------------

    def replay(self) -> tuple[list[dict], dict[str, dict]]:
        """Replay the journal into ``(open_jobs, terminal_records)``.

        *open_jobs* are ``accepted`` records (in submission order) with
        no terminal record yet; *terminal_records* maps job_id to its
        ``completed`` / ``quarantined`` record.
        """
        accepted: dict[str, dict] = {}
        terminal: dict[str, dict] = {}
        for record in self.journal.read():
            kind = record.get("kind")
            job_id = record.get("job_id")
            if not job_id:
                continue
            if kind == "accepted":
                accepted[job_id] = record
            elif kind in ("completed", "quarantined"):
                terminal[job_id] = record
        open_jobs = [
            record for job_id, record in accepted.items()
            if job_id not in terminal
        ]
        return open_jobs, terminal


def checkpoint_job_state(state: dict, path: str, keep: int,
                         faults=None) -> None:
    """Persist one job checkpoint, honouring the chaos plane's
    ``ckpt-torn`` site: when armed, the freshly written generation is
    torn mid-file (the simulated power cut lands *after* rotation, so
    the previous generation survives exactly as the RPRCKPT1 rotation
    stack promises) and the loader's CRC + fallback machinery is what
    keeps the job recoverable."""
    save_state(state, path, keep=keep)
    if faults is not None and faults.poll("ckpt-torn"):
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))
