"""Job model and scheduler: admission, the bounded queue, reconcile.

A *job* is one tenant's fuzzing campaign request ``(target, config,
budget_ns, tenant)``.  The scheduler owns the job table and a bounded
dispatch queue feeding the worker pool:

- **admission** is two-gated: the tenant's quota reservation
  (:mod:`repro.service.quotas`) and the queue bound.  Both rejections
  are structured — ``QUOTA_EXCEEDED`` / ``QUEUE_FULL`` with a
  ``retry_after_ms`` hint — so a well-behaved client backs off instead
  of the server growing an unbounded backlog;
- **acceptance is durable before it is acknowledged**: the job is
  journaled (fsync) before the dispatch queue ever sees it, so a
  ``kill -9`` immediately after the submit response still recovers the
  job;
- **dispatch is self-healing**: the chaos plane's ``queue-drop`` site
  models a dispatch lost between acceptance and the queue (the
  in-memory analogue of a lost cloud pub/sub message).  A periodic
  reconcile pass re-enqueues any accepted job that is neither queued
  nor running — the journal, not the queue, is the source of truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.parallel.worker import WORKER_MECHANISMS
from repro.targets import target_names


class JobState(enum.Enum):
    """Lifecycle of one job inside the service."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    QUARANTINED = "quarantined"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.QUARANTINED)


@dataclass(frozen=True)
class JobSpec:
    """What a tenant asked for — everything a job's result depends on."""

    tenant: str
    target: str
    budget_ns: int
    seed: int = 0
    mechanism: str = "closurex"
    n_workers: int = 1
    sync_every_ns: int = 10_000_000
    supervised: bool = True
    chaos_faults: int = 0          # per-job campaign-level fault plan

    @classmethod
    def from_params(cls, params: dict) -> "JobSpec":
        """Validate and build a spec from wire params; raises
        ``ValueError`` with a client-presentable message."""
        known = {
            "tenant", "target", "budget_ns", "seed", "mechanism",
            "n_workers", "sync_every_ns", "supervised", "chaos_faults",
        }
        unknown = set(params) - known
        if unknown:
            raise ValueError(f"unknown job parameters: {sorted(unknown)}")
        for key in ("tenant", "target", "budget_ns"):
            if key not in params:
                raise ValueError(f"missing required job parameter {key!r}")
        spec = cls(**params)
        if not spec.tenant or not isinstance(spec.tenant, str):
            raise ValueError("tenant must be a non-empty string")
        if spec.target not in target_names():
            raise ValueError(f"unknown target {spec.target!r}")
        if spec.mechanism not in WORKER_MECHANISMS:
            raise ValueError(f"unknown mechanism {spec.mechanism!r}")
        if spec.budget_ns < 1:
            raise ValueError("budget_ns must be >= 1")
        if spec.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        return spec

    def to_wire(self) -> dict:
        """Journal/wire form (plain JSON scalars)."""
        return {
            "tenant": self.tenant,
            "target": self.target,
            "budget_ns": self.budget_ns,
            "seed": self.seed,
            "mechanism": self.mechanism,
            "n_workers": self.n_workers,
            "sync_every_ns": self.sync_every_ns,
            "supervised": self.supervised,
            "chaos_faults": self.chaos_faults,
        }


@dataclass
class JobRecord:
    """One job's live service-side state (the job table row)."""

    job_id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    # Progress mirrors of the underlying campaign, updated per slice.
    clock_ns: int = 0
    execs: int = 0
    edges: int = 0
    corpus: int = 0
    unique_crashes: int = 0
    unique_hangs: int = 0
    # Failure-ladder bookkeeping.
    strikes: int = 0
    step_restarts: int = 0
    respawns: int = 0
    overrun_ns: int = 0
    quarantine_reason: str | None = None
    resumed_from_checkpoint: bool = False
    digest: str | None = None
    # Streaming: bumped on every sample; watchers poll it.
    version: int = 0
    samples: list[dict] = field(default_factory=list)
    # Dispatch bookkeeping (see module docstring): True while the job
    # sits in the asyncio queue or a worker holds it.
    dispatched: bool = False

    MAX_SAMPLES = 256

    def add_sample(self, sample: dict) -> None:
        """Record one progress sample (bounded ring) and wake watchers."""
        self.samples.append(sample)
        if len(self.samples) > self.MAX_SAMPLES:
            del self.samples[: len(self.samples) - self.MAX_SAMPLES]
        self.version += 1

    def to_wire(self) -> dict:
        """The ``status`` RPC row."""
        return {
            "job_id": self.job_id,
            "state": self.state.value,
            "spec": self.spec.to_wire(),
            "clock_ns": self.clock_ns,
            "execs": self.execs,
            "edges": self.edges,
            "corpus": self.corpus,
            "unique_crashes": self.unique_crashes,
            "unique_hangs": self.unique_hangs,
            "strikes": self.strikes,
            "step_restarts": self.step_restarts,
            "respawns": self.respawns,
            "overrun_ns": self.overrun_ns,
            "quarantine_reason": self.quarantine_reason,
            "resumed": self.resumed_from_checkpoint,
            "digest": self.digest,
        }


class QueueFull(RuntimeError):
    """Bounded-queue backpressure: try again after ``retry_after_ms``."""

    def __init__(self, depth: int, retry_after_ms: int):
        super().__init__(
            f"dispatch queue holds {depth} jobs; retry in {retry_after_ms} ms"
        )
        self.depth = depth
        self.retry_after_ms = retry_after_ms


class JobScheduler:
    """Job table + bounded dispatch queue (see module docstring).

    The scheduler is deliberately unaware of campaigns and executors;
    it deals in :class:`JobRecord` rows, and the worker pool deals in
    fuzzing.  ``faults`` is the service's shared chaos injector (or
    ``None``).
    """

    def __init__(self, max_queued: int, faults=None,
                 retry_after_ms: int = 500):
        if max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        self.max_queued = max_queued
        self.faults = faults
        self.retry_after_ms = retry_after_ms
        self.jobs: dict[str, JobRecord] = {}
        self.queue = None              # asyncio.Queue, set via bind()
        self._next_seq = 1
        self.queue_drops_recovered = 0

    def bind(self, queue) -> None:
        """Attach the asyncio dispatch queue (built on the running loop)."""
        self.queue = queue

    # -- admission -------------------------------------------------------

    def next_job_id(self) -> str:
        """Monotone job ids in submission order — deterministic for a
        fixed submission sequence, which is what makes service-level
        golden tests (same jobs, same ids, same digests) possible."""
        job_id = f"job-{self._next_seq:04d}"
        self._next_seq += 1
        return job_id

    def note_recovered_id(self, job_id: str) -> None:
        """Advance the id sequence past a journal-recovered job, so jobs
        submitted after a restart never collide with recovered ones."""
        try:
            seq = int(job_id.rsplit("-", 1)[-1])
        except ValueError:
            return
        self._next_seq = max(self._next_seq, seq + 1)

    def admit(self, spec: JobSpec, job_id: str | None = None) -> JobRecord:
        """Create the job row and enqueue it; quota must already be
        reserved and the acceptance journaled by the caller.  Raises
        :class:`QueueFull` (before any state is created) when the
        dispatch queue is at its bound."""
        if job_id is None:
            job_id = self.next_job_id()
        record = JobRecord(job_id=job_id, spec=spec)
        self.jobs[job_id] = record
        self.dispatch(record)
        return record

    def backlog(self) -> int:
        """Jobs accepted but not yet terminal."""
        return sum(
            1 for record in self.jobs.values() if not record.state.terminal
        )

    def check_capacity(self) -> None:
        """The queue-bound admission gate (raises :class:`QueueFull`)."""
        depth = self.backlog()
        if depth >= self.max_queued:
            raise QueueFull(depth, self.retry_after_ms)

    # -- dispatch --------------------------------------------------------

    def dispatch(self, record: JobRecord) -> None:
        """Hand an accepted job to the worker queue — unless the chaos
        plane eats the dispatch (``queue-drop``), in which case the
        reconcile pass will find and re-enqueue it."""
        if self.faults is not None and self.faults.poll("queue-drop"):
            return  # dispatch lost; record.dispatched stays False
        record.dispatched = True
        self.queue.put_nowait(record.job_id)

    def requeue_front(self, record: JobRecord) -> None:
        """Put a job back at dispatch (worker respawn path)."""
        record.state = JobState.QUEUED
        record.dispatched = True
        self.queue.put_nowait(record.job_id)

    def reconcile(self) -> int:
        """Re-enqueue accepted jobs that lost their dispatch; returns
        how many were recovered."""
        recovered = 0
        for record in self.jobs.values():
            if record.state is JobState.QUEUED and not record.dispatched:
                record.dispatched = True
                self.queue.put_nowait(record.job_id)
                recovered += 1
        self.queue_drops_recovered += recovered
        return recovered

    # -- views -----------------------------------------------------------

    def status(self, job_id: str) -> JobRecord | None:
        return self.jobs.get(job_id)

    def rows(self, tenant: str | None = None) -> list[dict]:
        """Wire rows, id-sorted, optionally filtered by tenant."""
        return [
            record.to_wire()
            for job_id, record in sorted(self.jobs.items())
            if tenant is None or record.spec.tenant == tenant
        ]
