"""CLI for the fuzzing service: ``python -m repro.service <cmd>``.

Subcommands:

- ``serve``    — run a server over a state directory (the directory is
  the durability domain: journal, per-job checkpoints, and the
  advertised endpoint all live there, so a restart with the same
  ``--state-dir`` recovers every accepted job);
- ``submit``   — submit one job and print its id;
- ``status``   — one job's row, or the whole service view;
- ``watch``    — stream one job's live samples until it finishes;
- ``drain``    — graceful drain: finish the backlog, then stop;
- ``shutdown`` — fast clean stop (in-flight jobs resume next serve).

Clients find the server through ``<state-dir>/endpoint.json`` (written
by ``serve`` once bound), or explicitly via ``--host``/``--port``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.chaos.plan import FaultPlan
from repro.service.protocol import ServiceError, call_sync
from repro.service.recovery import ServiceState
from repro.service.server import FuzzService, ServiceConfig, ServicePolicy


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--state-dir", default=None,
                        help="service state dir (reads endpoint.json)")
    parser.add_argument("--host", default=None)
    parser.add_argument("--port", type=int, default=None)


def _endpoint(args) -> tuple[str, int]:
    if args.host is not None and args.port is not None:
        return args.host, args.port
    if args.state_dir is None:
        raise SystemExit(
            "need --state-dir (to read endpoint.json) or --host/--port"
        )
    return ServiceState(args.state_dir).read_endpoint()


def _parse_tenant_quotas(pairs: list[str]) -> dict[str, int]:
    quotas: dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise SystemExit(
                f"--tenant-quota wants NAME=VIRTUAL_NS, got {pair!r}"
            )
        quotas[name] = int(value)
    return quotas


def _cmd_serve(args) -> int:
    chaos_plan = None
    if args.chaos_faults:
        chaos_plan = FaultPlan.generate(
            args.chaos_seed, args.chaos_faults,
            sites=FaultPlan.SERVICE_SITES,
        )
    config = ServiceConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queued=args.max_queued,
        default_quota_ns=args.default_quota_ns,
        tenant_quotas=_parse_tenant_quotas(args.tenant_quota),
        chaos_plan=chaos_plan,
        trace_path=args.trace,
        policy=ServicePolicy(
            slice_ns=args.slice_ns,
            checkpoint_every_slices=args.checkpoint_every_slices,
            watchdog_s=args.watchdog_s,
            restart_step_limit=args.restart_step_limit,
            max_respawns=args.max_respawns,
        ),
    )
    service = FuzzService(config)

    async def _serve() -> None:
        task = asyncio.ensure_future(service.run())
        await service.started.wait()
        host, port = service.endpoint
        print(f"serving on {host}:{port} "
              f"(state: {args.state_dir}, "
              f"recovered: {service.recovered_jobs} jobs)", flush=True)
        await task

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _print(result: dict) -> None:
    print(json.dumps(result, indent=2, sort_keys=True))


def _call(args, method: str, params: dict | None = None,
          on_notification=None) -> int:
    host, port = _endpoint(args)
    try:
        _print(call_sync(host, port, method, params, on_notification))
    except ServiceError as error:
        payload = error.to_wire()
        print(f"error: {json.dumps(payload, sort_keys=True)}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_submit(args) -> int:
    return _call(args, "submit", {
        "tenant": args.tenant,
        "target": args.target,
        "budget_ns": args.budget_ns,
        "seed": args.seed,
        "mechanism": args.mechanism,
        "n_workers": args.n_workers,
        "supervised": not args.unsupervised,
        "chaos_faults": args.job_chaos_faults,
    })


def _cmd_status(args) -> int:
    params: dict = {}
    if args.job:
        params["job_id"] = args.job
    if args.tenant:
        params["tenant"] = args.tenant
    return _call(args, "status", params)


def _cmd_watch(args) -> int:
    def on_sample(method: str, params: dict) -> None:
        print(json.dumps(params, sort_keys=True), flush=True)
    return _call(args, "watch", {"job_id": args.job}, on_sample)


def _cmd_drain(args) -> int:
    return _call(args, "drain")


def _cmd_shutdown(args) -> int:
    return _call(args, "shutdown")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="fault-tolerant multi-tenant fuzzing service",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    serve = sub.add_parser("serve", help="run a server")
    serve.add_argument("--state-dir", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--max-queued", type=int, default=8)
    serve.add_argument("--default-quota-ns", type=int,
                       default=2_000_000_000)
    serve.add_argument("--tenant-quota", action="append", default=[],
                       metavar="NAME=VIRTUAL_NS")
    serve.add_argument("--slice-ns", type=int, default=2_000_000)
    serve.add_argument("--checkpoint-every-slices", type=int, default=2)
    serve.add_argument("--watchdog-s", type=float, default=30.0)
    serve.add_argument("--restart-step-limit", type=int, default=2)
    serve.add_argument("--max-respawns", type=int, default=1)
    serve.add_argument("--chaos-seed", type=int, default=0)
    serve.add_argument("--chaos-faults", type=int, default=0,
                       help="service-plane fault-plan length")
    serve.add_argument("--trace", default=None,
                       help="JSONL trace of service events")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="submit one job")
    _add_endpoint_args(submit)
    submit.add_argument("--tenant", required=True)
    submit.add_argument("--target", required=True)
    submit.add_argument("--budget-ns", type=int, required=True)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--mechanism", default="closurex")
    submit.add_argument("--n-workers", type=int, default=1)
    submit.add_argument("--unsupervised", action="store_true")
    submit.add_argument("--job-chaos-faults", type=int, default=0,
                        help="per-job campaign-level fault plan")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="job row / service view")
    _add_endpoint_args(status)
    status.add_argument("--job", default=None)
    status.add_argument("--tenant", default=None)
    status.set_defaults(func=_cmd_status)

    watch = sub.add_parser("watch", help="stream one job's samples")
    _add_endpoint_args(watch)
    watch.add_argument("--job", required=True)
    watch.set_defaults(func=_cmd_watch)

    drain = sub.add_parser("drain", help="graceful drain + stop")
    _add_endpoint_args(drain)
    drain.set_defaults(func=_cmd_drain)

    shutdown = sub.add_parser("shutdown", help="fast clean stop")
    _add_endpoint_args(shutdown)
    shutdown.set_defaults(func=_cmd_shutdown)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
