"""The campaign worker pool: cooperative slicing plus the failure ladder.

Each worker is an asyncio task that pulls accepted jobs off the
dispatch queue and drives them through the stepwise Campaign surface:
``step_until`` one *slice* of virtual time, yield the event loop (so
submits, status polls, and watch streams stay live), checkpoint on the
slice cadence, repeat to the budget deadline.  Multi-worker jobs ride
:class:`~repro.parallel.ParallelCampaign` in a thread-pool executor —
the orchestrator owns its own round loop — with the same
checkpoint/resume story at sync barriers.

Failures climb a three-rung degradation ladder mirroring the
supervised executor's retry → respawn → quarantine shape, with capped
exponential wall-clock backoff between rungs:

1. **restart step** — reload the campaign from its newest loadable
   checkpoint generation and re-drive; a replayed slice is
   bit-identical, so a transient wedge costs wall time, never
   correctness;
2. **respawn worker** — the worker task is presumed wedged, dies, and
   is replaced; the job re-enters the queue front and resumes from its
   checkpoint on a fresh worker;
3. **quarantine job** — the job is journaled terminal-quarantined and
   its unconsumed quota refunded, so one pathological job can never
   wedge the fleet.

A per-slice wall-clock **watchdog deadline** feeds the same ladder
(a slice that returns but blew its deadline counts as a strike), and
the chaos plane's ``worker-wedge`` site injects rung-1/2/3 failures
deterministically.  Service-plane faults never touch a campaign's
virtual clock or RNG — that is the invariant that keeps every job's
digest identical whatever the service suffered.
"""

from __future__ import annotations

import asyncio
import time

from repro.chaos.plan import FaultInjector, FaultPlan
from repro.execution import SupervisedExecutor
from repro.experiments.campaign_runner import build_executor
from repro.fuzzing import Campaign, CampaignConfig
from repro.fuzzing.checkpoint import (
    CheckpointError,
    capture_state,
    load_checkpoint,
)
from repro.parallel import ParallelCampaign, ParallelConfig
from repro.sim_os import Kernel
from repro.service.recovery import checkpoint_job_state
from repro.service.scheduler import JobRecord, JobSpec, JobState
from repro.targets import get_target


class StepFailure(RuntimeError):
    """One failed drive attempt (wedge, watchdog, infrastructure)."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason
        self.detail = detail


class WorkerRespawnRequest(Exception):
    """Rung 2: the worker should die and be replaced."""

    def __init__(self, job: JobRecord):
        super().__init__(f"respawn requested while running {job.job_id}")
        self.job = job


def build_job_executor(spec: JobSpec):
    """One job's executor ladder: mechanism core, optional per-job
    campaign-level chaos plan, optional supervision wrapper.  The
    injector is rebuilt from the spec on every (re)construction and its
    counters live inside the supervised snapshot, so checkpoint resume
    restores the fault schedule mid-plan."""
    kernel = Kernel()
    executor = build_executor(spec.target, spec.mechanism, kernel)
    if spec.supervised:
        injector = None
        if spec.chaos_faults:
            injector = FaultInjector(
                FaultPlan.generate(spec.seed, spec.chaos_faults),
                clock=kernel.clock,
            )
        executor = SupervisedExecutor(executor, injector=injector)
    return executor


class WorkerPool:
    """N cooperative campaign workers over the service's job queue."""

    def __init__(self, service):
        self.service = service
        self.tasks: list[asyncio.Task] = []
        self.respawns = 0
        self._next_worker_id = 0
        self._live_parallel: dict[str, ParallelCampaign] = {}

    # -- lifecycle -------------------------------------------------------

    async def start(self, n_workers: int) -> None:
        """Spawn the initial worker tasks."""
        for _ in range(n_workers):
            self._spawn_worker()

    def _spawn_worker(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        self.tasks.append(
            asyncio.create_task(
                self._worker_loop(worker_id), name=f"svc-worker-{worker_id}"
            )
        )

    async def stop(self) -> None:
        """Stop every worker: sentinel per live task, then gather."""
        live = [task for task in self.tasks if not task.done()]
        for _ in live:
            self.service.scheduler.queue.put_nowait(None)
        await asyncio.gather(*self.tasks, return_exceptions=True)
        self.tasks = []

    def abort(self) -> None:
        """Hard-but-clean stop: cancel workers mid-slice and ask live
        parallel orchestrators to checkpoint and return.  In-flight
        jobs stay journal-accepted and resume on the next start."""
        for campaign in self._live_parallel.values():
            campaign.stop_requested = True
        for task in self.tasks:
            task.cancel()

    # -- the worker loop -------------------------------------------------

    async def _worker_loop(self, worker_id: int) -> None:
        service = self.service
        while True:
            job_id = await service.scheduler.queue.get()
            if job_id is None:
                return
            job = service.scheduler.jobs.get(job_id)
            if job is None or job.state.terminal:
                continue
            try:
                await self._run_job(worker_id, job)
            except WorkerRespawnRequest:
                # Rung 2: this worker is presumed wedged.  The job goes
                # back to the queue front, a replacement task takes this
                # worker's slot, and this task exits.
                self.respawns += 1
                service.note_event(
                    "service.worker.respawn",
                    worker=worker_id, job=job.job_id,
                )
                service.scheduler.requeue_front(job)
                self._spawn_worker()
                return

    async def _run_job(self, worker_id: int, job: JobRecord) -> None:
        """Drive one job to a terminal state, climbing the ladder."""
        service = self.service
        policy = service.config.policy
        job.state = JobState.RUNNING
        service.note_event(
            "service.job.start", job=job.job_id, worker=worker_id,
            tenant=job.spec.tenant,
        )
        while True:
            try:
                await self._attempt(job)
                return
            except asyncio.CancelledError:
                raise
            except WorkerRespawnRequest:
                raise
            except Exception as error:
                failure = (
                    error if isinstance(error, StepFailure)
                    else StepFailure("infrastructure", repr(error))
                )
                job.strikes += 1
                service.note_event(
                    "service.job.strike", job=job.job_id,
                    reason=failure.reason, strikes=job.strikes,
                )
                await self._backoff(job.strikes)
                if job.strikes <= policy.restart_step_limit:
                    job.step_restarts += 1   # rung 1: replay from ckpt
                    continue
                if job.respawns < policy.max_respawns:
                    job.respawns += 1        # rung 2
                    raise WorkerRespawnRequest(job)
                await service.quarantine_job(job, failure.reason)  # rung 3
                return

    async def _backoff(self, strikes: int) -> None:
        policy = self.service.config.policy
        delay_s = min(
            policy.backoff_base_s * (2 ** (strikes - 1)),
            policy.backoff_cap_s,
        )
        await asyncio.sleep(delay_s)

    def _poll_wedge(self) -> None:
        faults = self.service.faults
        if faults is not None:
            fault = faults.poll("worker-wedge")
            if fault is not None:
                raise StepFailure("worker-wedge", fault.detail)

    # -- single-worker jobs ----------------------------------------------

    async def _attempt(self, job: JobRecord) -> None:
        if job.spec.n_workers > 1:
            await self._attempt_parallel(job)
        else:
            await self._attempt_campaign(job)

    def _open_campaign(self, job: JobRecord) -> Campaign:
        """Fresh-or-resumed campaign for one attempt.  Resume prefers
        the newest loadable checkpoint generation; when none survives
        (all generations torn/corrupt) the campaign restarts from
        scratch, which is digest-equivalent by determinism."""
        spec = job.spec
        service = self.service
        path = service.state.checkpoint_path(job.job_id)
        config = CampaignConfig(
            budget_ns=spec.budget_ns,
            seed=spec.seed,
            checkpoint_path=path,
            # The service checkpoints explicitly on the slice cadence;
            # park the campaign's own periodic cadence past the budget.
            checkpoint_interval_ns=spec.budget_ns * 4,
            checkpoint_keep=service.config.policy.checkpoint_keep,
        )
        executor = build_job_executor(spec)
        try:
            state = load_checkpoint(path)
            campaign = Campaign.from_state(state, executor, config)
            job.resumed_from_checkpoint = True
        except CheckpointError:
            campaign = Campaign(
                executor, get_target(spec.target).seeds, config
            )
        campaign.start()
        return campaign

    async def _attempt_campaign(self, job: JobRecord) -> None:
        service = self.service
        policy = service.config.policy
        campaign = self._open_campaign(job)
        deadline_ns = campaign.run_start_ns + job.spec.budget_ns
        slices = 0
        while campaign.clock.now_ns < deadline_ns:
            self._poll_wedge()
            pause_ns = min(
                campaign.clock.now_ns + policy.slice_ns, deadline_ns
            )
            before_ns = campaign.clock.now_ns
            started = time.monotonic()
            campaign.step_until(pause_ns)
            if time.monotonic() - started > policy.watchdog_s:
                raise StepFailure(
                    "watchdog",
                    f"slice exceeded {policy.watchdog_s}s wall-clock",
                )
            if campaign.clock.now_ns <= before_ns:
                break   # empty corpus / no progress possible: wrap up
            slices += 1
            self._observe_campaign(job, campaign)
            if slices % policy.checkpoint_every_slices == 0:
                checkpoint_job_state(
                    capture_state(campaign),
                    service.state.checkpoint_path(job.job_id),
                    keep=policy.checkpoint_keep,
                    faults=service.faults,
                )
            # The cooperative yield: everything else the server does
            # (submits, status, watch streams) happens here.
            await asyncio.sleep(0)
        result = campaign.finish_run()
        await service.complete_job(job, campaign.state_digest(), result)

    def _observe_campaign(self, job: JobRecord, campaign: Campaign) -> None:
        """Per-slice bookkeeping: job mirrors, quota charge, sample."""
        service = self.service
        consumed_ns = campaign.clock.now_ns - campaign.run_start_ns
        job.clock_ns = campaign.clock.now_ns
        job.execs = campaign.execs
        job.edges = campaign.virgin.edges_found()
        job.corpus = len(campaign.corpus)
        job.unique_crashes = campaign.triage.unique_count
        job.unique_hangs = campaign.triage.unique_hang_count
        service.ledger.charge(job.spec.tenant, job.job_id, consumed_ns)
        self._poll_overrun(job)
        job.add_sample({
            "clock_ns": campaign.clock.now_ns,
            "t_ns": consumed_ns,
            "execs": job.execs,
            "edges": job.edges,
            "corpus": job.corpus,
            "unique_crashes": job.unique_crashes,
            "unique_hangs": job.unique_hangs,
            "execs_per_vsec": (
                job.execs / (consumed_ns / 1e9) if consumed_ns else 0.0
            ),
        })

    def _poll_overrun(self, job: JobRecord) -> None:
        """Chaos ``clock-overrun``: the service observes the job
        overrunning its slice and bills the tenant for one extra slice
        — service-side accounting only, the campaign's virtual
        timeline is untouched."""
        service = self.service
        if service.faults is not None and service.faults.poll(
                "clock-overrun"):
            overrun_ns = service.config.policy.slice_ns
            job.overrun_ns += overrun_ns
            service.ledger.charge_overrun(job.spec.tenant, overrun_ns)
            service.note_event(
                "service.job.overrun", job=job.job_id,
                overrun_ns=overrun_ns,
            )

    # -- multi-worker jobs -----------------------------------------------

    async def _attempt_parallel(self, job: JobRecord) -> None:
        """One ParallelCampaign attempt in the thread pool.  The
        orchestrator drives its own round loop, checkpointing at sync
        barriers; progress is sampled through ``on_barrier``.  The
        wall-clock watchdog does not preempt the thread — the
        orchestrator's own per-worker ``worker_timeout_s`` covers
        wedged shards."""
        self._poll_wedge()
        service = self.service
        spec = job.spec
        path = service.state.checkpoint_path(job.job_id)
        config = ParallelConfig(
            target=spec.target,
            n_workers=spec.n_workers,
            seed=spec.seed,
            budget_ns=spec.budget_ns,
            sync_every_ns=spec.sync_every_ns,
            mechanism=spec.mechanism,
            supervised=spec.supervised,
            chaos_faults=spec.chaos_faults,
            checkpoint_path=path,
            checkpoint_keep=service.config.policy.checkpoint_keep,
        )
        try:
            campaign = ParallelCampaign.resume(path, config)
            job.resumed_from_checkpoint = True
        except (CheckpointError, OSError):
            campaign = ParallelCampaign(config)

        def on_barrier(round_index, deadline_ns, reports, hub):
            # Runs on the campaign thread: touch only this job's row.
            job.clock_ns = deadline_ns
            job.execs = sum(r.execs for r in reports)
            job.edges = hub.virgin.edges_found()
            job.corpus = len(hub.corpus_hashes())
            job.unique_crashes = sum(r.unique_crashes for r in reports)
            job.add_sample({
                "clock_ns": deadline_ns,
                "t_ns": deadline_ns,
                "execs": job.execs,
                "edges": job.edges,
                "corpus": job.corpus,
                "unique_crashes": job.unique_crashes,
                "unique_hangs": 0,
                "execs_per_vsec": (
                    job.execs / (deadline_ns / 1e9) if deadline_ns else 0.0
                ),
            })

        campaign.on_barrier = on_barrier
        self._live_parallel[job.job_id] = campaign
        try:
            result = await asyncio.get_running_loop().run_in_executor(
                None, campaign.run
            )
        finally:
            self._live_parallel.pop(job.job_id, None)
        if result is None:
            # Cooperative stop during shutdown: the job stays accepted
            # and resumes from its barrier checkpoint next start.
            return
        service.ledger.charge(
            job.spec.tenant, job.job_id, spec.budget_ns
        )
        self._poll_overrun(job)
        await service.complete_job(job, result.digest(), result)
