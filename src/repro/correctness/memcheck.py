"""Memcheck: the Valgrind stand-in used by the paper's §6.1.4.

The MiniVM already detects memory-lifecycle violations (double free,
invalid free, use-after-free) as traps, and its heap tracks every live
chunk.  This module packages those capabilities the way the paper uses
Valgrind: run a queue of inputs under ClosureX-with-restoration and
verify that

- the *harness's own sweeps* never introduce a lifecycle violation
  (no double frees of chunks the target already released, etc.), and
- after each restoration, the target's heap is exactly its post-boot
  state (no residual or lost chunks) — the "memory usage identical to
  a fresh process" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.module import Module
from repro.runtime.harness import ClosureXHarness, HarnessConfig
from repro.vm.errors import TrapKind, VMTrap

#: Trap kinds that indicate a memory-lifecycle violation.
LIFECYCLE_KINDS = frozenset(
    {TrapKind.DOUBLE_FREE, TrapKind.INVALID_FREE, TrapKind.USE_AFTER_FREE}
)


@dataclass
class MemcheckReport:
    """Valgrind-style findings over one input queue."""

    inputs_checked: int = 0
    lifecycle_violations: list[tuple[int, VMTrap]] = field(default_factory=list)
    residual_chunk_failures: list[int] = field(default_factory=list)
    total_swept_chunks: int = 0
    total_swept_fds: int = 0

    @property
    def clean(self) -> bool:
        return not self.lifecycle_violations and not self.residual_chunk_failures

    def describe(self) -> str:
        if self.clean:
            return (
                f"clean: {self.inputs_checked} inputs, "
                f"{self.total_swept_chunks} leaked chunks swept, "
                f"{self.total_swept_fds} handles closed"
            )
        return (
            f"{len(self.lifecycle_violations)} lifecycle violations, "
            f"{len(self.residual_chunk_failures)} residual-heap failures"
        )


def run_memcheck(
    module: Module,
    inputs: list[bytes],
    config: HarnessConfig | None = None,
) -> MemcheckReport:
    """Execute *inputs* under ClosureX and audit memory behaviour."""
    harness = ClosureXHarness(module, config=config)
    harness.boot()
    assert harness.vm is not None
    vm = harness.vm
    baseline_chunks = dict(vm.heap.snapshot_live_set())
    report = MemcheckReport()

    for index, data in enumerate(inputs):
        result = harness.run_test_case(data, restore=True)
        report.inputs_checked += 1
        if result.restore is not None:
            report.total_swept_chunks += result.restore.leaked_chunks
            report.total_swept_fds += result.restore.closed_fds
        if (
            result.trap is not None
            and result.trap.kind in LIFECYCLE_KINDS
        ):
            report.lifecycle_violations.append((index, result.trap))
        if not result.status.survivable:
            # Crash/hang kills the process in reality; restart it.
            harness = ClosureXHarness(module, config=config)
            harness.boot()
            assert harness.vm is not None
            vm = harness.vm
            baseline_chunks = dict(vm.heap.snapshot_live_set())
            continue
        if vm.heap.snapshot_live_set() != baseline_chunks:
            report.residual_chunk_failures.append(index)
    return report
