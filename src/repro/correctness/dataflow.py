"""Dataflow-equivalence checking (paper §6.1.4).

Validates ClosureX's central correctness claim: executing a test case
in the persistent loop — after the state has been "polluted" by many
other test cases and restored — leaves the program in *exactly* the
state a fresh process would.

Methodology, mirroring the paper:

1. Run the input in N independent fresh processes; bytes that differ
   across those runs are *naturally non-deterministic* (PRNG seeds,
   time) and are masked out (:class:`NondetMask`).
2. Run the input under ClosureX after ``pollution_rounds`` other
   inputs have executed in the same process.
3. Compare the post-execution snapshots (writable globals, live heap
   chunk set, open handles) bytewise, modulo the mask.

Both sides execute the *same* ClosureX-instrumented module — the fresh
ground truth is simply a harness that runs one test case and stops,
i.e. a fresh process of the instrumented binary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.module import Module
from repro.runtime.harness import ClosureXHarness, HarnessConfig, IterationStatus
from repro.vm.snapshot import (
    NondetMask,
    ProgramSnapshot,
    SnapshotDelta,
    build_nondet_mask,
    diff_snapshots,
    take_snapshot,
)


@dataclass
class DataflowReport:
    """Outcome of one dataflow-equivalence check."""

    equivalent: bool
    delta: SnapshotDelta
    masked_bytes: int
    fresh_status: IterationStatus
    polluted_status: IterationStatus

    def describe(self) -> str:
        state = "EQUIVALENT" if self.equivalent else "DIVERGED"
        return (
            f"{state} (masked {self.masked_bytes} non-deterministic bytes): "
            f"{self.delta.describe()}"
        )


def fresh_snapshot(
    module: Module, data: bytes, config: HarnessConfig | None = None
) -> tuple[ProgramSnapshot, IterationStatus]:
    """Post-execution state of *data* in a brand-new process."""
    harness = ClosureXHarness(module, config=config)
    harness.boot()
    result = harness.run_test_case(data, restore=False)
    assert harness.vm is not None
    return take_snapshot(harness.vm), result.status


def polluted_snapshot(
    module: Module,
    data: bytes,
    pollution: list[bytes],
    config: HarnessConfig | None = None,
) -> tuple[ProgramSnapshot, IterationStatus]:
    """Post-execution state of *data* under ClosureX after running (and
    restoring) every input in *pollution* first.

    A crashing pollution input kills the persistent process (as it
    would in reality); the fuzzer restarts it, so we reboot the harness
    and continue polluting.
    """
    harness = ClosureXHarness(module, config=config)
    harness.boot()
    for other in pollution:
        result = harness.run_test_case(other, restore=True)
        if not result.status.survivable:
            harness = ClosureXHarness(module, config=config)
            harness.boot()
    result = harness.run_test_case(data, restore=False)
    assert harness.vm is not None
    return take_snapshot(harness.vm), result.status


def check_dataflow_equivalence(
    module: Module,
    data: bytes,
    pollution: list[bytes],
    nondet_runs: int = 3,
    config: HarnessConfig | None = None,
    mask_granularity: str = "variable",
) -> DataflowReport:
    """Full §6.1.4 dataflow check for one input.

    Variable-granularity masking is the default: when fresh runs show a
    global varies at all, the whole variable is treated as
    non-deterministic, which converges with few fresh runs (the paper's
    byte mask required "multiple" runs to stabilise).
    """
    fresh_runs = [fresh_snapshot(module, data, config) for _ in range(nondet_runs)]
    snapshots = [snap for snap, _ in fresh_runs]
    mask = build_nondet_mask(snapshots, granularity=mask_granularity)
    # The §6.1.4 comparison covers *target-visible* state.  libc's
    # internal PRNG seed is not target state (ClosureX deliberately does
    # not restore libc internals); its *effects* on target globals are
    # still compared, via the masked section diff.
    mask.ignore_rand = True
    observed, polluted_status = polluted_snapshot(module, data, pollution, config)
    delta = diff_snapshots(snapshots[0], observed, mask)
    if not delta.equivalent:
        # Adaptive refinement (the paper's "running fresh process
        # executions multiple times"): a small fresh sample can miss
        # rarely-varying non-deterministic bytes (e.g. a PRNG-placed
        # cache slot that only sometimes collides).  Collect more fresh
        # runs; if the disputed bytes vary naturally, the widened mask
        # absorbs them — a genuine divergence survives any number.
        for snap, _status in (
            fresh_snapshot(module, data, config) for _ in range(2 * nondet_runs + 4)
        ):
            snapshots.append(snap)
        mask = build_nondet_mask(snapshots, granularity=mask_granularity)
        delta = diff_snapshots(snapshots[0], observed, mask)
    return DataflowReport(
        equivalent=delta.equivalent,
        delta=delta,
        masked_bytes=mask.masked_byte_count,
        fresh_status=fresh_runs[0][1],
        polluted_status=polluted_status,
    )


def check_restoration_resets_state(
    module: Module, inputs: list[bytes], config: HarnessConfig | None = None
) -> SnapshotDelta:
    """Complementary invariant: after running *inputs* with restoration,
    the process state equals its post-boot state.

    The libc PRNG is deliberately excluded: ClosureX restores the
    *target's* state (globals, heap, handles); libc-internal state such
    as the ``rand`` seed is not covered by the GlobalPass, exactly as
    in the paper — its effects are what the non-determinism masking in
    the equivalence checks accounts for.
    """
    harness = ClosureXHarness(module, config=config)
    harness.boot()
    assert harness.vm is not None
    baseline = take_snapshot(harness.vm)
    for data in inputs:
        harness.run_test_case(data, restore=True)
    after = take_snapshot(harness.vm)
    mask = NondetMask()
    mask.ignore_rand = True
    return diff_snapshots(baseline, after, mask)
