"""Correctness validation: the paper's §6.1.4 machinery."""

from repro.correctness.controlflow import (
    ControlFlowReport,
    check_controlflow_equivalence,
    fresh_trace,
    polluted_trace,
)
from repro.correctness.dataflow import (
    DataflowReport,
    check_dataflow_equivalence,
    check_restoration_resets_state,
    fresh_snapshot,
    polluted_snapshot,
)
from repro.correctness.memcheck import (
    LIFECYCLE_KINDS,
    MemcheckReport,
    run_memcheck,
)

__all__ = [
    "ControlFlowReport", "check_controlflow_equivalence",
    "fresh_trace", "polluted_trace",
    "DataflowReport", "check_dataflow_equivalence",
    "check_restoration_resets_state", "fresh_snapshot", "polluted_snapshot",
    "LIFECYCLE_KINDS", "MemcheckReport", "run_memcheck",
]
