"""Control-flow-equivalence checking (paper §6.1.4).

Records the exact path-sensitive edge trace of a test case in a fresh
process and compares it with the trace of the same test case executed
under ClosureX after 1000 (configurable) polluting iterations.

Inputs whose traces differ across repeated *fresh* runs are flagged as
naturally non-deterministic and excluded, exactly as the paper handles
freetype's PRNG-dependent paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.module import Module
from repro.runtime.harness import ClosureXHarness, HarnessConfig

EdgeTrace = tuple[tuple[str, int], ...]


@dataclass
class ControlFlowReport:
    """Outcome of one control-flow-equivalence check."""

    equivalent: bool
    nondeterministic: bool       # excluded: fresh runs disagree with each other
    fresh_edges: int
    polluted_edges: int
    first_divergence: int | None = None

    def describe(self) -> str:
        if self.nondeterministic:
            return "EXCLUDED (naturally non-deterministic control flow)"
        if self.equivalent:
            return f"EQUIVALENT ({self.fresh_edges} edges)"
        return (
            f"DIVERGED at edge {self.first_divergence} "
            f"({self.fresh_edges} vs {self.polluted_edges} edges)"
        )


def _traced_run(harness: ClosureXHarness, data: bytes, restore: bool) -> EdgeTrace:
    assert harness.vm is not None
    vm = harness.vm
    vm.trace_edges = True
    vm.edge_trace = []
    try:
        harness.run_test_case(data, restore=restore)
    finally:
        vm.trace_edges = False
    return tuple(vm.edge_trace)


def fresh_trace(module: Module, data: bytes,
                config: HarnessConfig | None = None) -> EdgeTrace:
    """Path-sensitive edge trace of *data* in a brand-new process."""
    harness = ClosureXHarness(module, config=config)
    harness.boot()
    return _traced_run(harness, data, restore=False)


def polluted_trace(
    module: Module,
    data: bytes,
    pollution: list[bytes],
    config: HarnessConfig | None = None,
) -> EdgeTrace:
    """Edge trace of *data* under ClosureX after polluting iterations.

    Crashing pollution inputs kill the process; the harness is rebooted
    (the fuzzer's restart) and pollution continues."""
    harness = ClosureXHarness(module, config=config)
    harness.boot()
    for other in pollution:
        result = harness.run_test_case(other, restore=True)
        if not result.status.survivable:
            harness = ClosureXHarness(module, config=config)
            harness.boot()
    return _traced_run(harness, data, restore=False)


def check_controlflow_equivalence(
    module: Module,
    data: bytes,
    pollution: list[bytes],
    nondet_runs: int = 3,
    config: HarnessConfig | None = None,
) -> ControlFlowReport:
    """Full §6.1.4 control-flow check for one input."""
    traces = [fresh_trace(module, data, config) for _ in range(nondet_runs)]
    reference = traces[0]
    if any(t != reference for t in traces[1:]):
        return ControlFlowReport(
            equivalent=False,
            nondeterministic=True,
            fresh_edges=len(reference),
            polluted_edges=0,
        )
    observed = polluted_trace(module, data, pollution, config)
    if observed == reference:
        return ControlFlowReport(
            equivalent=True,
            nondeterministic=False,
            fresh_edges=len(reference),
            polluted_edges=len(observed),
        )
    # Adaptive refinement: before declaring divergence, gather more
    # fresh traces — a rarely-taken non-deterministic path (PRNG cache
    # hit) may not have shown in the initial sample.
    for _ in range(2 * nondet_runs + 4):
        if fresh_trace(module, data, config) != reference:
            return ControlFlowReport(
                equivalent=False,
                nondeterministic=True,
                fresh_edges=len(reference),
                polluted_edges=len(observed),
            )
    divergence = next(
        (i for i, (a, b) in enumerate(zip(reference, observed)) if a != b),
        min(len(reference), len(observed)),
    )
    return ControlFlowReport(
        equivalent=False,
        nondeterministic=False,
        fresh_edges=len(reference),
        polluted_edges=len(observed),
        first_divergence=divergence,
    )
