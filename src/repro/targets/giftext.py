"""giftext stand-in: a GIF structure dumper (paper Table 4, row 6).

giftext (from giflib) walks a GIF file and prints its structure.  This
target does the same walk: ``GIF87a``/``GIF89a`` signature, logical
screen descriptor, optional global color table, then the block stream —
extension blocks (0x21) with sub-block chains, image descriptors (0x2C)
with optional local color tables and LZW data sub-blocks, and the
trailer (0x3B).
"""

from __future__ import annotations

from repro.targets.framework import TargetSpec, register_target

SOURCE = r"""
char input_buf[1200];
long input_len;
int images_seen;
int extensions_seen;
long pixels_declared;
int color_table_sizes[8];
int got_trailer;
const char SIG87[7] = "GIF87a";
const char SIG89[7] = "GIF89a";

long rd_u16(char *p) {
    return (long)p[0] | ((long)p[1] << 8);
}

long skip_subblocks(long off) {
    while (off < input_len) {
        long len = (long)input_buf[off];
        off++;
        if (len == 0) { return off; }
        if (off + len > input_len) { exit(5); }
        long sum = 0;
        sum += (long)input_buf[off] + (long)input_buf[off + len - 1];
        pixels_declared += sum & 1;
        off += len;
    }
    exit(6);
    return off;
}

long parse_image(long off) {
    if (off + 9 > input_len) { exit(7); }
    long w = rd_u16(input_buf + off + 4);
    long h = rd_u16(input_buf + off + 6);
    char flags = input_buf[off + 8];
    pixels_declared += w * h;
    off += 9;
    if (flags & 0x80) {
        int bits = (flags & 7) + 1;
        long entries = (long)1 << bits;
        color_table_sizes[bits - 1]++;
        char *table = (char*)malloc(entries * 3);
        if (off + entries * 3 > input_len) { exit(8); }    /* leaks table */
        memcpy(table, input_buf + off, entries * 3);
        off += entries * 3;
        free(table);
    }
    if (off >= input_len) { exit(9); }
    off++;                       /* LZW minimum code size */
    images_seen++;
    return skip_subblocks(off);
}

long parse_extension(long off) {
    if (off + 1 > input_len) { exit(10); }
    char label = input_buf[off];
    off++;
    extensions_seen++;
    if (label == 0xf9 || label == 0x01 || label == 0xfe || label == 0xff) {
        return skip_subblocks(off);
    }
    return skip_subblocks(off);
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    input_len = fread(input_buf, 1, 1200, f);
    fclose(f);
    if (input_len < 13) { exit(2); }
    if (strncmp(input_buf, SIG87, 6) != 0 && strncmp(input_buf, SIG89, 6) != 0) {
        exit(3);
    }
    long width = rd_u16(input_buf + 6);
    long height = rd_u16(input_buf + 8);
    char flags = input_buf[10];
    pixels_declared = width * height;
    long off = 13;
    if (flags & 0x80) {
        int bits = (flags & 7) + 1;
        long entries = (long)1 << bits;
        color_table_sizes[bits - 1]++;
        if (off + entries * 3 > input_len) { exit(4); }
        off += entries * 3;
    }
    while (off < input_len) {
        char kind = input_buf[off];
        off++;
        if (kind == 0x3b) { got_trailer = 1; break; }
        if (kind == 0x2c) { off = parse_image(off); }
        else if (kind == 0x21) { off = parse_extension(off); }
        else { exit(11); }
    }
    if (!got_trailer) { return 1; }
    return 0;
}
"""


def make_gif(width: int = 4, height: int = 4, with_gct: bool = True) -> bytes:
    """Build a minimal-but-valid GIF89a."""
    out = bytearray(b"GIF89a")
    out += width.to_bytes(2, "little") + height.to_bytes(2, "little")
    if with_gct:
        out += bytes([0x80 | 0x01, 0, 0])          # GCT, 4 entries
        out += bytes(4 * 3)                        # the table
    else:
        out += bytes([0, 0, 0])
    # graphic control extension
    out += bytes([0x21, 0xF9, 4, 0, 0, 0, 0, 0])
    # image descriptor, no LCT
    out += bytes([0x2C]) + bytes(4) + width.to_bytes(2, "little") + \
        height.to_bytes(2, "little") + bytes([0])
    out += bytes([2])                              # LZW min code size
    out += bytes([3, 0x44, 0x01, 0x05, 0])         # one data sub-block + end
    out += bytes([0x3B])                           # trailer
    return bytes(out)


def _seeds() -> list[bytes]:
    with_comment = bytearray(make_gif(2, 2, with_gct=False))
    # splice a comment extension before the trailer
    trailer_at = len(with_comment) - 1
    comment = bytes([0x21, 0xFE, 5]) + b"hello" + bytes([0])
    patched = bytes(with_comment[:trailer_at]) + comment + b"\x3b"
    return [
        make_gif(4, 4, with_gct=True),
        make_gif(8, 2, with_gct=False),
        patched,
    ]


SPEC = register_target(
    TargetSpec(
        name="giftext",
        input_format="gif",
        image_bytes=232_000,
        source=SOURCE,
        seeds=_seeds(),
        bugs=[],
        description="GIF structure walker modelled on giflib's giftext",
    )
)
