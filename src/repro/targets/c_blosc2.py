"""c-blosc2 stand-in: Blosc2 frame decoder (paper Table 4, row 9).

Blosc2 "bframe" containers hold a header (magic, header/frame lengths,
chunk count, compression params), a chunk offset table, per-chunk
headers (codec, filters, sizes), and a trailer.  The paper found four
NULL-pointer dereferences in c-blosc2 (Table 7's four c-blosc2 rows);
this target plants four NULL dereferences in four distinct functions of
the equivalent decode path.
"""

from __future__ import annotations

import struct

from repro.targets.framework import PlantedBug, TargetSpec, register_target
from repro.vm.errors import TrapKind

SOURCE = r"""
char input_buf[1024];
long input_len;
int chunks_decoded;
int filters_applied;
long bytes_decoded;
long trailer_checked;
int codec_histogram[8];

long rd_u32(char *p) {
    return (long)p[0] | ((long)p[1] << 8) | ((long)p[2] << 16) | ((long)p[3] << 24);
}

/* BUG blosc2-1: a zero chunk offset yields a NULL chunk pointer that
   the header reader dereferences. */
char *chunk_at(long offset) {
    if (offset == 0 || offset + 16 > input_len) { return (char*)NULL; }
    return input_buf + offset;
}

long read_chunk_header(long offset) {
    char *chunk = chunk_at(offset);
    long version = (long)chunk[0];            /* NULL deref */
    long nbytes = rd_u32(chunk + 4);
    long cbytes = rd_u32(chunk + 8);
    if (cbytes > input_len) { exit(7); }
    if (nbytes > 4096) { exit(8); }
    return nbytes + (version & 1);
}

/* BUG blosc2-2: unknown codec ids index past the name table and the
   returned NULL is dereferenced by the decoder. */
char *codec_name(long codec) {
    if (codec < 5) { return input_buf; }      /* stand-in for a real entry */
    return (char*)NULL;
}

long decode_chunk(long offset) {
    char *chunk = input_buf + offset;
    long codec = (long)chunk[12];
    codec_histogram[codec & 7]++;
    char *name = codec_name(codec);
    long tag = (long)name[0];                 /* NULL deref for codec >= 5 */
    long nbytes = rd_u32(chunk + 4);
    char *out = (char*)malloc(nbytes + 1);
    long take = nbytes;
    if (offset + 16 + take > input_len) { take = input_len - offset - 16; }
    long csum = 0;
    if (take > 0) {
        memcpy(out, chunk + 16, take);
        for (long i = 0; i < take; i += 2) { csum += (long)out[i]; }
    }
    bytes_decoded += take + (tag & 1) + (csum & 1);
    chunks_decoded++;
    free(out);
    return nbytes;
}

/* BUG blosc2-3: filter id 6 has no implementation; the pipeline calls
   through the NULL slot anyway. */
char *filter_impl(long filter) {
    if (filter == 0) { return input_buf; }
    if (filter < 6) { return input_buf + filter; }
    return (char*)NULL;
}

long apply_filters(long offset) {
    char *chunk = input_buf + offset;
    long fcode = (long)chunk[13];
    long applied = 0;
    for (int i = 0; i < 2; i++) {
        long f = (fcode >> (i * 4)) & 0xf;
        if (f == 0) { continue; }
        char *impl = filter_impl(f);
        applied += (long)impl[0];             /* NULL deref for f >= 6 */
        filters_applied++;
    }
    return applied;
}

/* BUG blosc2-4: a frame declaring has_trailer with a truncated body
   produces a NULL trailer pointer. */
char *trailer_at(long frame_len) {
    if (frame_len < 32 || frame_len > input_len) { return (char*)NULL; }
    return input_buf + frame_len - 8;
}

long read_trailer(long frame_len) {
    char *t = trailer_at(frame_len);
    long version = (long)t[0];                /* NULL deref */
    trailer_checked += version;
    return version;
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    input_len = fread(input_buf, 1, 1024, f);
    fclose(f);
    if (input_len < 32) { exit(2); }
    if (input_buf[0] != 'b' || input_buf[1] != '2'
        || input_buf[2] != 'f' || input_buf[3] != 'r') { exit(3); }
    long header_len = rd_u32(input_buf + 4);
    long frame_len = rd_u32(input_buf + 8);
    long nchunks = rd_u32(input_buf + 12);
    char flags = input_buf[16];
    if (header_len < 32 || header_len > input_len) { exit(4); }
    if (nchunks > 12) { exit(5); }
    if (header_len + nchunks * 4 > input_len) { exit(6); }

    for (long i = 0; i < nchunks; i++) {
        long offset = rd_u32(input_buf + header_len + i * 4);
        long nbytes = read_chunk_header(offset);
        if (nbytes >= 0) {
            decode_chunk(offset);
            apply_filters(offset);
        }
    }
    if (flags & 0x10) {
        read_trailer(frame_len);
    }
    return chunks_decoded > 0 ? 0 : 1;
}
"""


def make_frame(chunks: list[bytes], flags: int = 0x10,
               codec: int = 1, filters: int = 0) -> bytes:
    """Build a bframe with valid offsets, chunk headers, and trailer."""
    header_len = 32
    offsets_at = header_len
    table_len = 4 * len(chunks)
    body = bytearray()
    offsets = []
    cursor = offsets_at + table_len
    for payload in chunks:
        offsets.append(cursor)
        chunk = struct.pack("<IIII", 0xC0DE, len(payload), len(payload) + 16,
                            codec | (filters << 8))
        # codec byte lives at chunk[12], filters at chunk[13]
        chunk = chunk[:12] + bytes([codec, filters, 0, 0])
        body += chunk + payload
        cursor += len(chunk) + len(payload)
    frame_len = cursor + 8
    out = bytearray()
    out += b"b2fr"
    out += struct.pack("<III", header_len, frame_len, len(chunks))
    out += bytes([flags]) + bytes(header_len - 17)
    for off in offsets:
        out += struct.pack("<I", off)
    out += body
    out += bytes([2]) + bytes(7)               # trailer
    return bytes(out)


def _seeds() -> list[bytes]:
    return [
        make_frame([b"0123456789abcdef"], flags=0x10, codec=1),
        make_frame([b"AAAA" * 8, b"BBBB" * 4], flags=0x10, codec=2, filters=0x21),
        make_frame([b"xyz" * 5], flags=0x00, codec=4, filters=0x03),
    ]


SPEC = register_target(
    TargetSpec(
        name="c-blosc2",
        input_format="bframe",
        image_bytes=12_000_000,
        source=SOURCE,
        seeds=_seeds(),
        bugs=[
            PlantedBug("blosc2-1", "zero chunk offset yields NULL chunk ptr",
                       TrapKind.NULL_DEREF, "read_chunk_header", "Null Ptr Deref."),
            PlantedBug("blosc2-2", "unknown codec id returns NULL name",
                       TrapKind.NULL_DEREF, "decode_chunk", "Null Ptr Deref."),
            PlantedBug("blosc2-3", "filter id >= 6 has NULL implementation",
                       TrapKind.NULL_DEREF, "apply_filters", "Null Ptr Deref."),
            PlantedBug("blosc2-4", "truncated frame yields NULL trailer",
                       TrapKind.NULL_DEREF, "read_trailer", "Null Ptr Deref."),
        ],
        description="Blosc2 frame decoder modelled on c-blosc2",
    )
)
