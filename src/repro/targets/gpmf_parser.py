"""gpmf-parser stand-in: GoPro GPMF telemetry parser (Table 4, row 3).

GPMF is a KLV (key-length-value) format embedded in GoPro MP4s: 4-byte
FourCC key, 1-byte type, 1-byte structure size, 2-byte big-endian
repeat count, then ``size*repeat`` payload bytes padded to 4.  Nested
``DEVC`` containers hold streams of telemetry keys (SCAL, TSMP, ACCL,
GPS5, MTRX...).

Planted bugs mirror the paper's Table 7 gpmf-parser rows — two
divisions by zero, two unaddressable accesses, one invalid write, one
invalid read — each in its own function so crash dedup sees six
distinct bugs.
"""

from __future__ import annotations

import struct

from repro.targets.framework import PlantedBug, TargetSpec, register_target
from repro.vm.errors import TrapKind

SOURCE = r"""
char input_buf[1024];
long input_len;
long samples_total;
long scal_value;
long tick_start;
long tick_end;
int keys_seen;
int devices_seen;
long accl_sum;
long matrix_trace;

long rd_u16be(char *p) {
    return ((long)p[0] << 8) | (long)p[1];
}

long rd_u32be(char *p) {
    return ((long)p[0] << 24) | ((long)p[1] << 16) | ((long)p[2] << 8) | (long)p[3];
}

int key_is(char *p, char a, char b, char c, char d) {
    return p[0] == a && p[1] == b && p[2] == c && p[3] == d;
}

/* BUG gpmf-1: SCAL payload of zero divides the metric scaler. */
long scale_metric(long raw) {
    return raw * 1000 / scal_value;
}

/* BUG gpmf-2: equal TICK/TOCK timestamps zero the rate denominator. */
long compute_rate() {
    return samples_total * 1000 / (tick_end - tick_start);
}

/* BUG gpmf-3: GPS5 lookup offset is trusted and dereferenced far
   outside the staged payload (unaddressable). */
long read_payload(char *chunk, long chunk_len, long jump) {
    long off = 4096 + jump * 64;
    return (long)chunk[off];
}

/* BUG gpmf-4: DVID container back-reference seeks below the heap. */
long seek_device(char *chunk, long back) {
    char *p = chunk - 8192 - back * 512;
    return (long)p[0];
}

/* BUG gpmf-5: sample staging writes 4-byte records into a buffer
   sized by the (attacker-controlled) structure size. */
long store_sample(char *payload, long size, long repeat) {
    char *buf = (char*)malloc(size * repeat);
    for (long i = 0; i < repeat; i++) {
        long v = rd_u32be(payload + i * size);
        buf[i * size] = (char)(v & 0xff);
        buf[i * size + 1] = (char)((v >> 8) & 0xff);
        buf[i * size + 2] = (char)((v >> 16) & 0xff);
        buf[i * size + 3] = (char)(v >> 24);
        accl_sum += v;
    }
    free(buf);
    return repeat;
}

/* BUG gpmf-6: 3x3 matrix load assumes 36 payload bytes. */
long load_matrix(char *payload, long payload_len) {
    char *m = (char*)malloc(payload_len);
    memcpy(m, payload, payload_len);
    long trace = (long)m[0] + (long)m[16] + (long)m[32];
    free(m);
    return trace;
}

long parse_klv(long off, int depth) {
    if (off + 8 > input_len) { exit(3); }
    char *p = input_buf + off;
    char type = p[4];
    long size = (long)p[5];
    long repeat = rd_u16be(p + 6);
    long payload_len = size * repeat;
    long padded = (payload_len + 3) & ~3;
    if (off + 8 + payload_len > input_len) { exit(4); }
    char *payload = p + 8;
    keys_seen++;

    if (key_is(p, 'D', 'E', 'V', 'C')) {
        devices_seen++;
        if (depth > 2) { exit(5); }
        long inner = off + 8;
        long end = off + 8 + payload_len;
        while (inner + 8 <= end) {
            inner = parse_klv(inner, depth + 1);
        }
        return off + 8 + padded;
    }
    if (key_is(p, 'S', 'C', 'A', 'L')) {
        if (payload_len < 4) { exit(6); }
        scal_value = rd_u32be(payload);
        samples_total = scale_metric(samples_total + 1);
    } else if (key_is(p, 'T', 'S', 'M', 'P')) {
        if (payload_len < 4) { exit(7); }
        samples_total += rd_u32be(payload);
    } else if (key_is(p, 'T', 'I', 'C', 'K')) {
        if (payload_len < 4) { exit(8); }
        tick_start = rd_u32be(payload);
    } else if (key_is(p, 'T', 'O', 'C', 'K')) {
        if (payload_len < 4) { exit(9); }
        tick_end = rd_u32be(payload);
        if (tick_start || tick_end) {
            samples_total += compute_rate();
        }
    } else if (key_is(p, 'A', 'C', 'C', 'L')) {
        if (type != 's' || size < 2 || repeat < 1) { exit(10); }
        store_sample(payload, size, repeat);
    } else if (key_is(p, 'G', 'P', 'S', '5')) {
        if (payload_len < 2) { exit(11); }
        long jump = rd_u16be(payload);
        if (jump > 8) {
            samples_total += read_payload(payload, payload_len, jump);
        }
    } else if (key_is(p, 'D', 'V', 'I', 'D')) {
        if (payload_len < 2) { exit(12); }
        long back = rd_u16be(payload);
        if (back > 4) {
            samples_total += seek_device(payload, back);
        }
    } else if (key_is(p, 'M', 'T', 'R', 'X')) {
        if (payload_len < 4) { exit(13); }
        matrix_trace = load_matrix(payload, payload_len);
    }
    return off + 8 + padded;
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    input_len = fread(input_buf, 1, 1024, f);
    fclose(f);
    if (input_len < 8) { exit(2); }
    if (!key_is(input_buf, 'D', 'E', 'V', 'C')) { exit(14); }
    long off = 0;
    while (off + 8 <= input_len) {
        off = parse_klv(off, 0);
    }
    return keys_seen > 2 ? 0 : 1;
}
"""


def klv(key: bytes, type_: bytes, size: int, repeat: int, payload: bytes) -> bytes:
    padded = payload + bytes((-len(payload)) % 4)
    return key + type_ + bytes([size]) + struct.pack(">H", repeat) + padded


def _stream(*entries: bytes) -> bytes:
    body = b"".join(entries)
    return klv(b"DEVC", b"\x00", 1, len(body), body)


def _seeds() -> list[bytes]:
    scal = klv(b"SCAL", b"l", 4, 1, struct.pack(">I", 9))
    tsmp = klv(b"TSMP", b"L", 4, 1, struct.pack(">I", 100))
    # TICK and TOCK one byte apart: a single-byte mutation (or a havoc
    # block copy) equalises them, arming the rate divide-by-zero.
    tick = klv(b"TICK", b"L", 4, 1, struct.pack(">I", 0x11223344))
    tock = klv(b"TOCK", b"L", 4, 1, struct.pack(">I", 0x11223544))
    accl = klv(b"ACCL", b"s", 4, 3, struct.pack(">III", 1, 2, 3))
    gps5 = klv(b"GPS5", b"l", 4, 2, struct.pack(">HH", 2, 0) + bytes(4))
    dvid = klv(b"DVID", b"L", 4, 1, struct.pack(">HH", 1, 0))
    mtrx = klv(b"MTRX", b"f", 4, 9, struct.pack(">9I", *range(9)))
    return [
        _stream(scal, tsmp, accl),
        _stream(tick, tock, tsmp),
        _stream(gps5, dvid),
        _stream(mtrx, scal),
        _stream(scal, tick, tock, accl, gps5),
    ]


SPEC = register_target(
    TargetSpec(
        name="gpmf-parser",
        input_format="mp4 (GoPro)",
        image_bytes=720_000,
        source=SOURCE,
        seeds=_seeds(),
        bugs=[
            PlantedBug("gpmf-1", "SCAL of zero divides metric scaler",
                       TrapKind.DIV_BY_ZERO, "scale_metric", "Division by Zero"),
            PlantedBug("gpmf-2", "TICK==TOCK zeroes rate denominator",
                       TrapKind.DIV_BY_ZERO, "compute_rate", "Division by Zero"),
            PlantedBug("gpmf-3", "GPS5 jump offset dereferenced unchecked",
                       TrapKind.UNADDRESSABLE, "read_payload", "Unaddressable Access"),
            PlantedBug("gpmf-4", "DVID back-reference seeks below heap",
                       TrapKind.UNADDRESSABLE, "seek_device", "Unaddressable Access"),
            PlantedBug("gpmf-5", "ACCL staging writes 4-byte records into "
                       "size*repeat buffer with size<4",
                       TrapKind.INVALID_WRITE, "store_sample", "Invalid Write"),
            PlantedBug("gpmf-6", "MTRX trace assumes 36 payload bytes",
                       TrapKind.INVALID_READ, "load_matrix", "Invalid Read"),
        ],
        description="GPMF KLV telemetry parser modelled on gpmf-parser",
    )
)
