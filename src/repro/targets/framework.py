"""Target framework: specs, builds, registry, bug manifests.

Each benchmark target is a MiniC program mirroring one of the paper's
Table 4 subjects: same input format, comparable structure (format
gates, record iteration, global state, dynamic allocation, early
``exit()`` paths), and — for the four programs where the paper found
0-days — planted bugs whose types match Table 7's rows.

A :class:`TargetSpec` compiles its source through the appropriate pass
pipeline on demand; baseline and ClosureX builds share a coverage seed
derived from the target name so their edge ids agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.analysis.pollution import PollutionAnalyzer, PollutionReport
from repro.ir.module import Module
from repro.ir.cfg import edge_count
from repro.minic import compile_c
from repro.passes.base import PassManager
from repro.passes.pipelines import (
    baseline_passes,
    closurex_passes,
    persistent_passes,
    pollution_aware_pipeline,
)
from repro.vm.errors import TrapKind


@dataclass(frozen=True)
class PlantedBug:
    """Manifest entry for one intentionally introduced bug."""

    bug_id: str
    description: str
    trap_kind: TrapKind
    function: str           # crash-site function name (dedup identity)
    table7_label: str       # bug-type string as printed in Table 7

    def matches(self, identity: tuple[TrapKind, str, str]) -> bool:
        kind, function, _block = identity
        return kind is self.trap_kind and function == self.function


@dataclass
class TargetSpec:
    """One benchmark target (a row of the paper's Table 4)."""

    name: str
    input_format: str
    image_bytes: int
    source: str
    seeds: list[bytes]
    bugs: list[PlantedBug] = field(default_factory=list)
    extra_allocators: dict[str, str] | None = None
    description: str = ""

    @property
    def coverage_seed(self) -> int:
        seed = 0
        for ch in self.name.encode():
            seed = (seed * 131 + ch) & 0x7FFFFFFF
        return seed

    # -- builds ---------------------------------------------------------

    def compile(self) -> Module:
        """Compile the raw (uninstrumented) module."""
        return compile_c(self.source, self.name)

    def build_baseline(self, optimize: bool = False) -> Module:
        """AFL++-style build: coverage instrumentation only."""
        module = self.compile()
        PassManager(baseline_passes(self.coverage_seed)).run(module)
        if optimize:
            self._optimize(module)
        return module

    def build_closurex(self, skip: set[str] | None = None,
                       optimize: bool = False) -> Module:
        """Full ClosureX instrumentation; *skip* drops passes (ablation)."""
        module = self.compile()
        manager = PassManager(
            closurex_passes(self.coverage_seed, self.extra_allocators, skip)
        )
        manager.run(module)
        if optimize:
            self._optimize(module)
        return module

    def build_persistent(self, optimize: bool = False) -> Module:
        """Naive persistent-mode build (renamed entry, no tracking)."""
        module = self.compile()
        PassManager(persistent_passes(self.coverage_seed)).run(module)
        if optimize:
            self._optimize(module)
        return module

    def build_optimized(self):
        """ClosureX build run through the validated optimizer.

        Returns the module and the
        :class:`~repro.analysis.opt.optimizer.OptimizationReport`
        describing what was applied, rejected, and replayed.
        """
        module = self.build_closurex()
        return module, self._optimize(module)

    def _optimize(self, module: Module):
        # Lazy import: repro.analysis.opt replays modules through the
        # VM/harness stack, which imports this package for builds.
        from repro.analysis.opt import optimize_module

        return optimize_module(
            module,
            seeds=tuple(self.seeds),
            extra_allocators=self.extra_allocators,
        )

    def analyze(self) -> PollutionReport:
        """Pollution-classify the raw module (no instrumentation)."""
        return PollutionAnalyzer(
            self.compile(), extra_allocators=self.extra_allocators
        ).run()

    def build_analyzed(self) -> tuple[Module, PollutionReport]:
        """Analysis-guided ClosureX build: passes for provably clean
        state dimensions are elided, and (with a trusted report) only
        modified globals are relocated.  Returns the instrumented
        module *and* the report, which the runtime harness consumes to
        skip the matching restore sweeps."""
        module = self.compile()
        _results, report = pollution_aware_pipeline(
            module, self.coverage_seed, self.extra_allocators
        )
        return module, report

    # -- metadata ---------------------------------------------------------

    def static_edge_count(self) -> int:
        """Size of this target's static CFG edge universe (coverage
        denominator for Table 6)."""
        return edge_count(self.build_baseline())

    def find_bug(self, identity: tuple[TrapKind, str, str]) -> PlantedBug | None:
        for bug in self.bugs:
            if bug.matches(identity):
                return bug
        return None


_REGISTRY: dict[str, TargetSpec] = {}


def register_target(spec: TargetSpec) -> TargetSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate target {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_target(name: str) -> TargetSpec:
    _ensure_loaded()
    return _REGISTRY[name]


def all_targets() -> list[TargetSpec]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def target_names() -> list[str]:
    _ensure_loaded()
    return list(_REGISTRY)


@lru_cache(maxsize=1)
def _ensure_loaded() -> bool:
    """Import the ten target modules, populating the registry."""
    from repro.targets import (  # noqa: F401
        bsdtar,
        c_blosc2,
        freetype,
        giftext,
        gpmf_parser,
        libbpf,
        libdwarf,
        libpcap,
        md4c,
        zlib_target,
    )
    return True
