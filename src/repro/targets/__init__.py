"""The ten benchmark targets (paper Table 4) plus the target framework.

Importing this package does *not* compile anything; target sources are
compiled lazily by :meth:`TargetSpec.build_baseline` /
:meth:`TargetSpec.build_closurex` / :meth:`TargetSpec.build_persistent`.
"""

from repro.targets.framework import (
    PlantedBug,
    TargetSpec,
    all_targets,
    get_target,
    register_target,
    target_names,
)

#: The paper's Table 4, as data: name -> (input format, executable size).
BENCHMARKS: dict[str, tuple[str, int]] = {
    "bsdtar": ("tar", 4_700_000),
    "libpcap": ("pcap", 2_400_000),
    "gpmf-parser": ("mp4 (GoPro)", 720_000),
    "libbpf": ("bpf object", 1_900_000),
    "freetype": ("ttf", 4_600_000),
    "giftext": ("gif", 232_000),
    "zlib": ("zlib archive", 260_000),
    "libdwarf": ("ELF", 2_800),
    "c-blosc2": ("bframe", 12_000_000),
    "md4c": ("markdown", 652_000),
}

__all__ = [
    "BENCHMARKS",
    "PlantedBug",
    "TargetSpec",
    "all_targets",
    "get_target",
    "register_target",
    "target_names",
]
