"""zlib stand-in: a zlib-wrapped DEFLATE stream walker (Table 4, row 7).

Checks the RFC 1950 two-byte header (compression method 8, window
bits, ``(CMF*256+FLG) % 31 == 0``, optional preset dictionary), then
walks DEFLATE blocks: stored blocks with the LEN/~NLEN consistency
check, and a structural scan standing in for fixed/dynamic Huffman
decode.  The running Adler-32 state lives in globals, a window buffer
on the heap.
"""

from __future__ import annotations

import struct

from repro.targets.framework import TargetSpec, register_target

SOURCE = r"""
char input_buf[1200];
long input_len;
long adler_a;
long adler_b;
int stored_blocks;
int fixed_blocks;
int dynamic_blocks;
long output_bytes;
int saw_final;

void adler_update(char *p, long len) {
    for (long i = 0; i < len; i++) {
        adler_a = (adler_a + (long)p[i]) % 65521;
        adler_b = (adler_b + adler_a) % 65521;
    }
}

long stored_block(long off) {
    if (off + 4 > input_len) { exit(6); }
    long len = (long)input_buf[off] | ((long)input_buf[off + 1] << 8);
    long nlen = (long)input_buf[off + 2] | ((long)input_buf[off + 3] << 8);
    if ((len ^ 0xffff) != nlen) { exit(7); }
    off += 4;
    if (off + len > input_len) { exit(8); }
    if (len > 512) { exit(9); }
    char *window = (char*)malloc(len + 1);
    memcpy(window, input_buf + off, len);
    adler_update(window, len > 8 ? 8 : len);
    output_bytes += len;
    stored_blocks++;
    free(window);
    return off + len;
}

long huffman_block(long off, int dynamic) {
    /* structural scan standing in for Huffman decode: consume symbols
       until a 0x00 end-of-block byte */
    long scanned = 0;
    while (off < input_len && scanned < 256) {
        char sym = input_buf[off];
        off++;
        scanned++;
        if (sym == 0) { break; }
        if (sym >= 0x80) {
            /* back-reference: distance byte must follow */
            if (off >= input_len) { exit(10); }
            char dist = input_buf[off];
            off++;
            if (dist == 0) { exit(11); }
            output_bytes += (long)(sym & 0x7f);
        } else {
            output_bytes += 1;
        }
    }
    if (dynamic) { dynamic_blocks++; } else { fixed_blocks++; }
    adler_update(input_buf, input_len > 4 ? 4 : input_len);
    return off;
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    input_len = fread(input_buf, 1, 1200, f);
    fclose(f);
    if (input_len < 6) { exit(2); }
    long cmf = (long)input_buf[0];
    long flg = (long)input_buf[1];
    if ((cmf & 0x0f) != 8) { exit(3); }
    if (((cmf >> 4) & 0x0f) > 7) { exit(4); }
    if ((cmf * 256 + flg) % 31 != 0) { exit(5); }
    long off = 2;
    if (flg & 0x20) { off += 4; }          /* preset dictionary id */
    adler_a = 1;
    adler_b = 0;
    int blocks = 0;
    while (off < input_len && blocks < 8) {
        char hdr = input_buf[off];
        off++;
        int bfinal = hdr & 1;
        int btype = (hdr >> 1) & 3;
        if (btype == 0) { off = stored_block(off); }
        else if (btype == 1) { off = huffman_block(off, 0); }
        else if (btype == 2) { off = huffman_block(off, 1); }
        else { exit(12); }
        blocks++;
        if (bfinal) { saw_final = 1; break; }
    }
    if (!saw_final) { return 1; }
    return 0;
}
"""


def _zlib_header(level: int = 0) -> bytes:
    cmf = 0x78
    flg = (level << 6) | 0
    rem = (cmf * 256 + flg) % 31
    if rem:
        flg += 31 - rem
    return bytes([cmf, flg])


def make_stream(blocks: list[bytes], kinds: list[int]) -> bytes:
    out = bytearray(_zlib_header())
    for i, (payload, kind) in enumerate(zip(blocks, kinds)):
        final = 1 if i == len(blocks) - 1 else 0
        out.append(final | (kind << 1))
        if kind == 0:
            out += struct.pack("<HH", len(payload), len(payload) ^ 0xFFFF)
            out += payload
        else:
            out += payload + b"\x00"
    return bytes(out)


def _seeds() -> list[bytes]:
    return [
        make_stream([b"hello, z"], [0]),
        make_stream([b"\x12\x23\x41", b"tail"], [1, 0]),
        make_stream([b"\x90\x04\x33", b"\x11"], [2, 1]),
    ]


SPEC = register_target(
    TargetSpec(
        name="zlib",
        input_format="zlib archive",
        image_bytes=260_000,
        source=SOURCE,
        seeds=_seeds(),
        bugs=[],
        description="zlib/DEFLATE stream walker modelled on zlib",
    )
)
