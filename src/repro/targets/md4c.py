"""md4c stand-in: a Markdown block/inline parser (paper Table 4, row 10).

md4c is a SAX-style CommonMark parser.  This target implements the same
shape of work: line splitting, block classification (ATX headings,
fenced code, block quotes, lists, paragraphs), and inline scanning for
emphasis, code spans, and reference links.

Planted bugs mirror Table 7's two md4c rows: a ``memcpy`` with negative
size when a heading line consists only of ``#`` markers, and an
out-of-bounds write into a global link-reference table.
"""

from __future__ import annotations

from repro.targets.framework import PlantedBug, TargetSpec, register_target
from repro.vm.errors import TrapKind

SOURCE = r"""
char input_buf[1024];
long input_len;
int headings[7];
int code_blocks;
int quotes;
int list_items;
int paragraphs;
int emphasis_spans;
int code_spans;
int links_seen;
int ref_table[32];
char heading_text[128];
int in_fence;

/* BUG md4c-1: a line of only '#' markers makes len - level - 1
   negative, which flows into memcpy's size. */
void copy_heading(char *line, long len, long level) {
    long body = len - level - 1;
    if (body > 120) { body = 120; }
    memcpy(heading_text, line + level + 1, body);
    heading_text[body > 0 ? body : 0] = 0;
}

/* BUG md4c-2: reference ids index the ref table unchecked. */
void resolve_ref(long id) {
    ref_table[id]++;
    links_seen++;
}

void scan_inline(char *line, long len) {
    long i = 0;
    while (i < len) {
        char c = line[i];
        if (c == '*' || c == '_') {
            long j = i + 1;
            while (j < len && line[j] != c) { j++; }
            if (j < len) { emphasis_spans++; i = j; }
        } else if (c == '`') {
            long j = i + 1;
            while (j < len && line[j] != '`') { j++; }
            if (j < len) { code_spans++; i = j; }
        } else if (c == '[') {
            long j = i + 1;
            long id = 0;
            int digits = 0;
            while (j < len && line[j] != ']') {
                if (line[j] >= '0' && line[j] <= '9') {
                    id = id * 10 + (long)(line[j] - '0');
                    digits++;
                }
                j++;
            }
            if (j < len && digits > 0 && digits < 3) {
                resolve_ref(id % 48);
                i = j;
            }
        }
        i++;
    }
}

void handle_line(char *line, long len) {
    if (len == 0) { return; }
    if (in_fence) {
        if (len >= 3 && line[0] == '`' && line[1] == '`' && line[2] == '`') {
            in_fence = 0;
        }
        return;
    }
    if (line[0] == '#') {
        long level = 0;
        while (level < len && line[level] == '#') { level++; }
        if (level > 6) { exit(3); }
        headings[level]++;
        copy_heading(line, len, level);
        scan_inline(heading_text, strlen(heading_text));
        return;
    }
    if (len >= 3 && line[0] == '`' && line[1] == '`' && line[2] == '`') {
        in_fence = 1;
        code_blocks++;
        return;
    }
    if (line[0] == '>') {
        quotes++;
        scan_inline(line + 1, len - 1);
        return;
    }
    if ((line[0] == '-' || line[0] == '*') && len > 1 && line[1] == ' ') {
        list_items++;
        scan_inline(line + 2, len - 2);
        return;
    }
    paragraphs++;
    scan_inline(line, len);
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    input_len = fread(input_buf, 1, 1024, f);
    fclose(f);
    if (input_len == 0) { exit(2); }
    long start = 0;
    for (long i = 0; i <= input_len; i++) {
        if (i == input_len || input_buf[i] == '\n') {
            handle_line(input_buf + start, i - start);
            start = i + 1;
        }
    }
    return paragraphs + headings[1] + headings[2] > 0 ? 0 : 1;
}
"""

_SEED_DOC = b"""# T
*em* `c` [2]
> q
"""

_SEED_REFS = b"""### R [3] [9]
[30] x [31] y [29]
"""

_SEED_MIXED = b"""#### Deep
* li **b** [5]
"""


def _seeds() -> list[bytes]:
    return [_SEED_DOC, _SEED_REFS, _SEED_MIXED]


SPEC = register_target(
    TargetSpec(
        name="md4c",
        input_format="markdown",
        image_bytes=652_000,
        source=SOURCE,
        seeds=_seeds(),
        bugs=[
            PlantedBug("md4c-1", "all-# heading line drives memcpy size negative",
                       TrapKind.NEGATIVE_MEMCPY, "copy_heading",
                       "Memcpy with negative size"),
            PlantedBug("md4c-2", "reference id 32..47 overruns ref_table",
                       TrapKind.ARRAY_OOB, "resolve_ref",
                       "Array out of bounds access"),
        ],
        description="CommonMark-style parser modelled on md4c",
    )
)
