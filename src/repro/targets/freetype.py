"""freetype stand-in: a TrueType (sfnt) font loader (Table 4, row 5).

Parses the sfnt container: version tag, big-endian table directory
(tag / checksum / offset / length per entry), then the ``head``,
``maxp``, ``cmap``, and ``hmtx`` tables, staging glyph metrics through
heap buffers.

The paper's §6.1.4 flags freetype as the one benchmark with naturally
non-deterministic control flow, suspected to come from a PRNG.  This
target reproduces that property: a ``rand()``-seeded cache-slot
decision writes to a global and biases a branch, so identical inputs
can take slightly different paths across runs — which the correctness
experiments must mask, exactly as the paper does.
"""

from __future__ import annotations

import struct

from repro.targets.framework import TargetSpec, register_target

SOURCE = r"""
char input_buf[1200];
long input_len;
int tables_seen;
int glyphs_declared;
long units_per_em;
int cmap_subtables;
int cache_slots[8];
int cache_hits;
long metrics_sum;

long rd_u16(char *p) {
    return ((long)p[0] << 8) | (long)p[1];
}

long rd_u32(char *p) {
    return ((long)p[0] << 24) | ((long)p[1] << 16) | ((long)p[2] << 8) | (long)p[3];
}

int tag_is(char *p, char a, char b, char c, char d) {
    return p[0] == a && p[1] == b && p[2] == c && p[3] == d;
}

/* Natural non-determinism: cache placement uses the libc PRNG, and the
   chosen slot feeds back into control flow (a cache-hit fast path). */
void cache_touch(long key) {
    int slot = rand() & 7;
    if (cache_slots[slot] == (int)(key & 0x7fffffff)) {
        cache_hits++;
    } else {
        cache_slots[slot] = (int)(key & 0x7fffffff);
    }
}

void parse_head(long off, long len) {
    if (len < 54) { exit(5); }
    long magic = rd_u32(input_buf + off + 12);
    if (magic != 0x5f0f3cf5) { exit(6); }
    units_per_em = rd_u16(input_buf + off + 18);
    if (units_per_em == 0) { exit(7); }
    cache_touch(units_per_em);
}

void parse_maxp(long off, long len) {
    if (len < 6) { exit(8); }
    glyphs_declared = (int)rd_u16(input_buf + off + 4);
    if (glyphs_declared > 512) { exit(9); }
}

void parse_cmap(long off, long len) {
    if (len < 4) { exit(10); }
    long ntab = rd_u16(input_buf + off + 2);
    if (ntab > 8) { exit(11); }
    for (long i = 0; i < ntab; i++) {
        long rec = off + 4 + i * 8;
        if (rec + 8 > off + len) { exit(12); }
        long platform = rd_u16(input_buf + rec);
        long sub_off = rd_u32(input_buf + rec + 4);
        if (sub_off >= len) { exit(13); }
        if (platform <= 4) { cmap_subtables++; }
        cache_touch(platform * 131 + sub_off);
    }
}

void parse_hmtx(long off, long len) {
    long count = len / 4;
    if (count > 64) { count = 64; }
    char *metrics = (char*)malloc(count * 4 + 4);
    memcpy(metrics, input_buf + off, count * 4);
    for (long i = 0; i < count; i++) {
        long advance = rd_u16(metrics + i * 4);
        long bearing = rd_u16(metrics + i * 4 + 2);
        metrics_sum += advance;
        if (bearing > advance) { metrics_sum -= bearing - advance; }
        cache_touch(advance);
    }
    free(metrics);
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    input_len = fread(input_buf, 1, 1200, f);
    if (input_len < 12) { exit(2); }
    long version = rd_u32(input_buf);
    if (version != 0x00010000 && version != 0x74727565) { exit(3); }
    long num_tables = rd_u16(input_buf + 4);
    if (num_tables == 0 || num_tables > 16) { exit(4); }
    if (12 + num_tables * 16 > input_len) { exit(14); }   /* leaks FILE */
    fclose(f);

    srand((int)time() + (int)(version & 0xffff));
    for (long i = 0; i < num_tables; i++) {
        char *entry = input_buf + 12 + i * 16;
        long off = rd_u32(entry + 8);
        long len = rd_u32(entry + 12);
        if (off + len > input_len) { exit(15); }
        if (off > input_len) { exit(16); }
        tables_seen++;
        if (tag_is(entry, 'h', 'e', 'a', 'd')) { parse_head(off, len); }
        else if (tag_is(entry, 'm', 'a', 'x', 'p')) { parse_maxp(off, len); }
        else if (tag_is(entry, 'c', 'm', 'a', 'p')) { parse_cmap(off, len); }
        else if (tag_is(entry, 'h', 'm', 't', 'x')) { parse_hmtx(off, len); }
    }
    return tables_seen > 0 ? 0 : 1;
}
"""


def make_font(tables: list[tuple[bytes, bytes]]) -> bytes:
    """Build an sfnt: tables = [(4cc tag, payload)]."""
    directory_len = 12 + 16 * len(tables)
    out = bytearray()
    out += struct.pack(">I", 0x00010000)
    out += struct.pack(">HHHH", len(tables), 16, 4, 0)
    cursor = directory_len
    payloads = b""
    for tag, payload in tables:
        out += tag + struct.pack(">III", 0, cursor, len(payload))
        payloads += payload
        cursor += len(payload)
    return bytes(out) + payloads


def _head_table() -> bytes:
    head = bytearray(54)
    head[12:16] = struct.pack(">I", 0x5F0F3CF5)
    head[18:20] = struct.pack(">H", 1000)
    return bytes(head)


def _cmap_table(n: int = 2) -> bytes:
    out = struct.pack(">HH", 0, n)
    for i in range(n):
        out += struct.pack(">HHI", 3, 1, 4 + 8 * n + i * 4)
    return out + bytes(8)


def _seeds() -> list[bytes]:
    maxp = struct.pack(">IHH", 0x00010000, 0, 96)[:6] + bytes(2)
    # Repeated advance widths make the PRNG-placed cache *sometimes*
    # hit (same slot drawn twice), giving the occasional run-to-run
    # control-flow divergence the paper observed on freetype.
    hmtx = struct.pack(">8H", 500, 0, 500, 1, 480, 2, 500, 3)
    return [
        make_font([(b"head", _head_table()), (b"maxp", maxp)]),
        make_font([(b"head", _head_table()), (b"cmap", _cmap_table(2)),
                   (b"hmtx", hmtx)]),
        make_font([(b"maxp", maxp), (b"hmtx", hmtx)]),
    ]


SPEC = register_target(
    TargetSpec(
        name="freetype",
        input_format="ttf",
        image_bytes=4_600_000,
        source=SOURCE,
        seeds=_seeds(),
        bugs=[],
        description="sfnt/TrueType loader modelled on FreeType",
    )
)
