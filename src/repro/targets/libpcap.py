"""libpcap stand-in: a pcap savefile reader (paper Table 4, row 2).

Parses the classic libpcap capture format: a global header with the
``0xa1b2c3d4`` magic (either byte order), version check, snaplen, and
link type, followed by per-packet record headers.  Packet payloads are
staged through heap buffers and a link-type dispatch inspects Ethernet
and IPv4 framing, mirroring how pcap consumers walk captures.
"""

from __future__ import annotations

import struct

from repro.targets.framework import TargetSpec, register_target

SOURCE = r"""
char input_buf[1400];
long input_len;
int swapped;
long packets_seen;
long bytes_captured;
long truncated_packets;
int linktype;
int proto_counts[8];

long rd_u32(char *p) {
    if (swapped) {
        return ((long)p[0] << 24) | ((long)p[1] << 16) | ((long)p[2] << 8) | (long)p[3];
    }
    return (long)p[0] | ((long)p[1] << 8) | ((long)p[2] << 16) | ((long)p[3] << 24);
}

long rd_u16be(char *p) {
    return ((long)p[0] << 8) | (long)p[1];
}

long ip_checksum(char *ip, long words) {
    long sum = 0;
    for (long i = 0; i < words; i++) {
        sum += ((long)ip[i * 2] << 8) | (long)ip[i * 2 + 1];
    }
    while (sum > 0xffff) { sum = (sum & 0xffff) + (sum >> 16); }
    return sum;
}

void inspect_ethernet(char *pkt, long caplen) {
    if (caplen < 14) { truncated_packets++; return; }
    long ethertype = rd_u16be(pkt + 12);
    if (ethertype == 0x0800) {
        proto_counts[1]++;
        if (caplen >= 34) {
            char ihl = pkt[14] & 0x0f;
            char proto = pkt[23];
            if (ihl < 5) { exit(6); }
            long csum = ip_checksum(pkt + 14, (long)ihl * 2);
            bytes_captured += csum & 1;
            if (proto == 6) { proto_counts[2]++; }
            else if (proto == 17) { proto_counts[3]++; }
            else { proto_counts[4]++; }
        }
    } else if (ethertype == 0x0806) {
        proto_counts[5]++;
    } else {
        proto_counts[6]++;
    }
}

long process_packet(long off, long snaplen) {
    char *rec = input_buf + off;
    long caplen = rd_u32(rec + 8);
    long origlen = rd_u32(rec + 12);
    if (caplen > snaplen) { exit(4); }
    if (caplen > origlen) { exit(5); }
    if (off + 16 + caplen > input_len) {
        truncated_packets++;
        return -1;
    }
    char *copy = (char*)malloc(caplen + 1);
    memcpy(copy, rec + 16, caplen);
    copy[caplen] = 0;
    if (linktype == 1) {
        inspect_ethernet(copy, caplen);
    } else {
        proto_counts[7]++;
    }
    bytes_captured += caplen;
    packets_seen++;
    if ((packets_seen & 3) == 3) {
        /* simulated sampling path forgets to release the copy */
        return caplen;
    }
    free(copy);
    return caplen;
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    input_len = fread(input_buf, 1, 1400, f);
    if (input_len < 24) { exit(2); }
    long magic = (long)input_buf[0] | ((long)input_buf[1] << 8)
               | ((long)input_buf[2] << 16) | ((long)input_buf[3] << 24);
    if (magic == 0xa1b2c3d4) { swapped = 0; }
    else if (magic == 0xd4c3b2a1) { swapped = 1; }
    else { exit(3); }              /* FILE handle leaks here */
    long vmajor = swapped ? rd_u32(input_buf + 4) >> 16 : ((long)input_buf[4] | ((long)input_buf[5] << 8));
    if (vmajor != 2) { exit(7); }
    long snaplen = rd_u32(input_buf + 16);
    linktype = (int)rd_u32(input_buf + 20);
    fclose(f);
    long off = 24;
    while (off + 16 <= input_len) {
        long caplen = process_packet(off, snaplen);
        if (caplen < 0) { break; }
        off += 16 + caplen;
    }
    return packets_seen > 0 ? 0 : 1;
}
"""


def make_pcap(packets: list[bytes], snaplen: int = 256, linktype: int = 1) -> bytes:
    """Build a little-endian pcap capture."""
    out = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, snaplen, linktype)
    for payload in packets:
        out += struct.pack("<IIII", 0, 0, len(payload), len(payload)) + payload
    return out


def _ethernet_ipv4(proto: int) -> bytes:
    eth = b"\xaa" * 6 + b"\xbb" * 6 + b"\x08\x00"
    ip = bytes([0x45, 0]) + struct.pack(">H", 40) + b"\x00" * 4 + bytes([64, proto]) + b"\x00" * 12
    return eth + ip + b"\x00" * 8


def _seeds() -> list[bytes]:
    return [
        make_pcap([_ethernet_ipv4(6), _ethernet_ipv4(17)]),
        make_pcap([_ethernet_ipv4(17), _ethernet_ipv4(6), _ethernet_ipv4(1),
                   _ethernet_ipv4(6)]),
        make_pcap([b"\xaa" * 6 + b"\xbb" * 6 + b"\x08\x06" + b"\x00" * 28,
                   _ethernet_ipv4(6)]),
        make_pcap([], snaplen=64),
    ]


SPEC = register_target(
    TargetSpec(
        name="libpcap",
        input_format="pcap",
        image_bytes=2_400_000,
        source=SOURCE,
        seeds=_seeds(),
        bugs=[],
        description="pcap savefile reader modelled on libpcap",
    )
)
