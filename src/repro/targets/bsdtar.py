"""bsdtar stand-in: a ustar archive lister (paper Table 4, row 1).

Real bsdtar is libarchive's CLI; the evaluation fuzzes its tar parsing.
This target parses ustar headers the same way: 512-byte header blocks
with octal-encoded fields, the ``ustar`` magic at offset 257, a
checksum over the header, and per-entry type dispatch.  It exercises
all four state classes ClosureX restores — mutable globals (counters,
name cache), heap (per-entry payload copies, some leaked on error
paths), a FILE handle kept open across parsing (leaked on ``exit``),
and ``exit()`` on malformed archives.
"""

from __future__ import annotations

from repro.targets.framework import TargetSpec, register_target

SOURCE = r"""
char input_buf[1600];
long input_len;
long entries_seen;
long bytes_archived;
long dirs_seen;
int type_counts[16];
char last_name[104];
int error_count;
const char TMAGIC[6] = "ustar";

long rd_octal(char *p, int n) {
    long v = 0;
    for (int i = 0; i < n; i++) {
        char c = p[i];
        if (c == 0 || c == ' ') { break; }
        if (c < '0' || c > '7') { error_count++; return -1; }
        v = (v << 3) + (long)(c - '0');
    }
    return v;
}

long header_checksum(char *h) {
    /* strided checksum keeps the walk cheap but input-sensitive */
    long sum = 0;
    for (int i = 0; i < 512; i += 64) {
        if (i >= 148 && i < 156) { sum += 32; }
        else { sum += (long)h[i]; }
    }
    return sum;
}

int is_end_block(char *h) {
    return h[0] == 0 && h[1] == 0 && h[2] == 0 && h[3] == 0;
}

void remember_name(char *h) {
    int i = 0;
    while (i < 12 && h[i]) {
        last_name[i] = h[i];
        i++;
    }
    last_name[i] = 0;
}

long process_entry(char *h) {
    long size = rd_octal(h + 130, 6);
    if (size < 0) { exit(3); }
    long sum = rd_octal(h + 150, 6);
    if (sum != header_checksum(h)) { exit(4); }
    if (strncmp(h + 257, TMAGIC, 5) != 0) { exit(5); }
    char t = h[156];
    type_counts[t & 15]++;
    remember_name(h);
    if (t == '5') {
        dirs_seen++;
        return 0;
    }
    if (t == '1' || t == '2') {
        /* hard/sym link: keep a copy of the link name (leaked). */
        char *link = (char*)malloc(101);
        int i = 0;
        while (i < 24 && h[157 + i]) { link[i] = h[157 + i]; i++; }
        link[i] = 0;
        return 0;
    }
    bytes_archived += size;
    long blocks = (size + 511) / 512;
    if (blocks > 2) { exit(6); }
    /* stage the payload like the extractor would */
    char *payload = (char*)malloc(512);
    long have = input_len - 512;
    if (have > 512) { have = 512; }
    if (blocks > 0 && have > 0) {
        memcpy(payload, h + 512, have);
        bytes_archived += (long)payload[0] & 1;
    }
    free(payload);
    entries_seen++;
    return blocks;
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    input_len = fread(input_buf, 1, 1600, f);
    if (input_len < 512) { exit(2); }      /* leaks the FILE handle */
    long off = 0;
    while (off + 512 <= input_len) {
        char *h = input_buf + off;
        if (is_end_block(h)) { break; }
        long blocks = process_entry(h);
        off += 512 + blocks * 512;
    }
    fclose(f);
    if (entries_seen > 0 && error_count > 0) { return 1; }
    return 0;
}
"""


def _octal(value: int, width: int) -> bytes:
    return (f"{value:0{width - 1}o}").encode() + b"\x00"


def _header_checksum(header: bytes) -> int:
    """Mirror of the target's strided checksum."""
    total = 0
    for i in range(0, 512, 64):
        total += 32 if 148 <= i < 156 else header[i]
    return total


def make_tar_entry(name: bytes, size: int, typeflag: bytes = b"0",
                   payload: bytes = b"") -> bytes:
    """Build one valid ustar header block (+ payload blocks)."""
    header = bytearray(512)
    header[0:len(name)] = name
    header[100:108] = _octal(0o644, 8)       # mode
    header[108:116] = _octal(0, 8)           # uid
    header[116:124] = _octal(0, 8)           # gid
    header[124:136] = _octal(size, 12)       # size
    header[136:148] = _octal(0, 12)          # mtime
    header[148:156] = b" " * 8               # checksum placeholder
    header[156:157] = typeflag
    header[257:263] = b"ustar\x00"
    checksum = _header_checksum(header)
    header[148:156] = _octal(checksum, 7) + b" "
    blocks = bytes(header)
    if payload:
        padded = payload + bytes((-len(payload)) % 512)
        blocks += padded
    return blocks


def _seeds() -> list[bytes]:
    file_entry = make_tar_entry(b"hello.txt", 13, b"0", b"hello, world\n")
    dir_entry = make_tar_entry(b"docs/", 0, b"5")
    link_entry = bytearray(make_tar_entry(b"link", 0, b"2"))
    link_entry[157:161] = b"dest"
    # Re-checksum after adding the linkname.
    link_entry[148:156] = b" " * 8
    link_entry[148:156] = _octal(_header_checksum(bytes(link_entry[:512])), 7) + b" "
    return [
        file_entry,
        dir_entry + bytes(512),
        bytes(link_entry),
        file_entry + dir_entry,
    ]


SPEC = register_target(
    TargetSpec(
        name="bsdtar",
        input_format="tar",
        image_bytes=4_700_000,
        source=SOURCE,
        seeds=_seeds(),
        bugs=[],
        description="ustar archive lister modelled on bsdtar/libarchive",
    )
)
