"""libbpf stand-in: BPF ELF object loader (paper Table 4, row 4).

libbpf parses ELF object files containing BPF programs: the ELF header,
the section header table, symbol/string tables, map definitions in a
``maps`` section, and relocation sections that patch instruction
operands.  The paper's flagship 0-day was a NULL-pointer dereference
while parsing the relocation section of a malformed ELF — reproduced
here as ``parse_relocs`` (bug libbpf-1), alongside two further NULL
dereferences matching Table 7's three libbpf rows.

ELF32 little-endian layout used:
  header: magic(4) .. e_shoff@32(u32) .. e_shnum@48(u16)
  section header (40 B): name(4) type(4) flags(4) addr(4) off(4)
                         size(4) link(4) info(4) align(4) entsize(4)
"""

from __future__ import annotations

import struct

from repro.targets.framework import PlantedBug, TargetSpec, register_target
from repro.vm.errors import TrapKind

SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_REL = 9
SHT_PROGBITS = 1

SOURCE = r"""
struct Section {
    long type;
    long offset;
    long size;
    long entsize;
};

char input_buf[1024];
long input_len;
int section_count;
long relocs_applied;
long symbols_resolved;
long maps_loaded;
long progs_seen;
struct Section *sections;

long rd_u32(char *p) {
    return (long)p[0] | ((long)p[1] << 8) | ((long)p[2] << 16) | ((long)p[3] << 24);
}

long rd_u16(char *p) {
    return (long)p[0] | ((long)p[1] << 8);
}

struct Section *find_section_by_type(long type) {
    for (int i = 0; i < section_count; i++) {
        if (sections[i].type == type) { return &sections[i]; }
    }
    return (struct Section*)NULL;
}

/* BUG libbpf-1 (the paper's quick find): the relocation parser grabs
   the symbol table without checking it exists. */
long parse_relocs(struct Section *rel) {
    struct Section *symtab = find_section_by_type(2);
    long nsyms = symtab->size / 16;          /* NULL deref when absent */
    long count = rel->entsize ? rel->size / rel->entsize : 0;
    for (long i = 0; i < count && i < 4; i++) {
        long off = rel->offset + i * rel->entsize;
        if (off + 8 > input_len) { exit(8); }
        long r_sym = rd_u32(input_buf + off + 4) >> 8;
        if (r_sym < nsyms) { relocs_applied++; }
    }
    return count;
}

/* BUG libbpf-2: symbol resolution trusts that a string table exists. */
long resolve_symbol(long sym_index) {
    struct Section *symtab = find_section_by_type(2);
    if (!symtab) { exit(9); }
    long off = symtab->offset + sym_index * 16;
    if (off + 16 > input_len) { exit(10); }
    long name_off = rd_u32(input_buf + off);
    struct Section *strtab = find_section_by_type(3);
    long str_at = strtab->offset + name_off;   /* NULL deref when absent */
    if (str_at >= input_len) { return 0; }
    symbols_resolved++;
    return (long)input_buf[str_at];
}

/* BUG libbpf-3: map definitions shorter than 16 bytes yield a NULL
   def pointer that is dereferenced anyway. */
char *get_map_def(struct Section *maps, long index) {
    long off = maps->offset + index * 16;
    if (off + 16 > input_len) { return (char*)NULL; }
    return input_buf + off;
}

long load_maps(struct Section *maps) {
    long count = maps->size / 16;
    for (long i = 0; i <= count && i < 8; i++) {
        char *def = get_map_def(maps, i);
        long map_type = (long)def[0];            /* NULL deref off-by-one */
        long key_size = rd_u32(def + 4);
        if (map_type > 30) { exit(11); }
        if (key_size > 512) { exit(12); }
        maps_loaded++;
    }
    return count;
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    input_len = fread(input_buf, 1, 1024, f);
    fclose(f);
    if (input_len < 52) { exit(2); }
    if (input_buf[0] != 0x7f || input_buf[1] != 'E'
        || input_buf[2] != 'L' || input_buf[3] != 'F') { exit(3); }
    if (input_buf[4] != 1) { exit(4); }          /* ELFCLASS32 */
    long shoff = rd_u32(input_buf + 32);
    long shnum = rd_u16(input_buf + 48);
    if (shnum == 0 || shnum > 12) { exit(5); }
    if (shoff + shnum * 40 > input_len) { exit(6); }

    sections = (struct Section*)malloc(shnum * 32);
    section_count = (int)shnum;
    for (long i = 0; i < shnum; i++) {
        char *sh = input_buf + shoff + i * 40;
        sections[i].type = rd_u32(sh + 4);
        sections[i].offset = rd_u32(sh + 16);
        sections[i].size = rd_u32(sh + 20);
        sections[i].entsize = rd_u32(sh + 36);
        if (sections[i].offset > input_len) { exit(7); }  /* leaks sections */
    }

    for (int i = 0; i < section_count; i++) {
        long type = sections[i].type;
        if (type == 9) {
            parse_relocs(&sections[i]);
        } else if (type == 1) {
            progs_seen++;
            if (sections[i].size >= 8 && sections[i].entsize == 8) {
                resolve_symbol(0);
            }
        } else if (type == 6) {
            load_maps(&sections[i]);
        }
    }
    free(sections);
    return progs_seen > 0 ? 0 : 1;
}
"""


def _elf(sections: list[tuple[int, int, bytes, int, int]],
         extra: bytes = b"") -> bytes:
    """Build a little ELF32: sections = [(type, name_off, payload, link,
    entsize)]."""
    header_size = 52
    payloads = b""
    offsets = []
    cursor = header_size
    for _type, _name, payload, _link, _entsize in sections:
        offsets.append(cursor)
        payloads += payload
        cursor += len(payload)
    shoff = cursor
    out = bytearray()
    out += b"\x7fELF" + bytes([1, 1, 1]) + bytes(9)      # ident
    out += struct.pack("<HHI", 1, 247, 1)                 # ET_REL, EM_BPF
    out += struct.pack("<III", 0, 0, shoff)               # entry, phoff, shoff
    out += struct.pack("<IHHHHHH", 0, header_size, 0, 0, 40,
                       len(sections), 0)
    assert len(out) == header_size
    out += payloads
    for (stype, name_off, payload, link, entsize), off in zip(sections, offsets):
        out += struct.pack("<10I", name_off, stype, 0, 0, off,
                           len(payload), link, 0, 4, entsize)
    return bytes(out) + extra


def _seeds() -> list[bytes]:
    symtab = bytes(32)                       # two 16-byte symbols
    strtab = b"\x00main\x00license\x00"
    prog = struct.pack("<8B", 0xB7, 0, 0, 0, 1, 0, 0, 0) * 2   # 2 insns
    rel = struct.pack("<II", 0, (1 << 8) | 1)                   # one rel entry
    maps = struct.pack("<IIII", 2, 4, 8, 16)                    # one map def
    return [
        _elf([(SHT_SYMTAB, 6, symtab, 2, 16),
              (SHT_STRTAB, 14, strtab, 0, 0)]),
        _elf([(SHT_PROGBITS, 1, prog, 0, 8),
              (SHT_SYMTAB, 6, symtab, 2, 16),
              (SHT_STRTAB, 14, strtab, 0, 0),
              (SHT_REL, 20, rel, 1, 8)]),
        _elf([(6, 26, maps, 0, 16),
              (SHT_SYMTAB, 6, symtab, 2, 16)]),
    ]


SPEC = register_target(
    TargetSpec(
        name="libbpf",
        input_format="bpf object",
        image_bytes=1_900_000,
        source=SOURCE,
        seeds=_seeds(),
        bugs=[
            PlantedBug("libbpf-1", "relocation parse derefs missing symtab",
                       TrapKind.NULL_DEREF, "parse_relocs", "Null Ptr Deref."),
            PlantedBug("libbpf-2", "symbol resolve derefs missing strtab",
                       TrapKind.NULL_DEREF, "resolve_symbol", "Null Ptr Deref."),
            PlantedBug("libbpf-3", "off-by-one map index derefs NULL def",
                       TrapKind.NULL_DEREF, "load_maps", "Null Ptr Deref."),
        ],
        description="BPF ELF object loader modelled on libbpf",
    )
)
