"""libdwarf stand-in: DWARF debug-info reader over ELF (Table 4, row 8).

libdwarf consumes ELF objects and parses their ``.debug_info`` DIE
trees.  This target does the ELF section walk (sharing the ELF32
layout with the libbpf target — both real libraries share that
substrate too), locates ``.debug_info`` and ``.debug_abbrev``-style
payloads by section type tags, and walks a compilation-unit header plus
a DIE tree: ULEB128 abbrev codes, attribute forms, and sibling chains
with bounded depth.
"""

from __future__ import annotations

import struct

from repro.targets.framework import TargetSpec, register_target

SOURCE = r"""
char input_buf[1024];
long input_len;
int dies_seen;
int attrs_seen;
int max_depth_seen;
long cu_length;
int strings_touched;
long uleb_cursor;

long rd_u32(char *p) {
    return (long)p[0] | ((long)p[1] << 8) | ((long)p[2] << 16) | ((long)p[3] << 24);
}

long rd_u16(char *p) {
    return (long)p[0] | ((long)p[1] << 8);
}

long read_uleb(long off) {
    long result = 0;
    int shift = 0;
    while (off < input_len && shift < 35) {
        char byte = input_buf[off];
        off++;
        result = result | (((long)byte & 0x7f) << shift);
        shift += 7;
        if ((byte & 0x80) == 0) {
            uleb_cursor = off;
            return result;
        }
    }
    exit(8);
    return 0;
}

long walk_die(long off, long end, int depth) {
    if (depth > 6) { exit(9); }
    if (depth > max_depth_seen) { max_depth_seen = depth; }
    long code = read_uleb(off);
    off = uleb_cursor;
    if (code == 0) { return off; }            /* null DIE: end of siblings */
    dies_seen++;
    long nattrs = read_uleb(off);
    off = uleb_cursor;
    if (nattrs > 8) { exit(10); }
    for (long i = 0; i < nattrs; i++) {
        if (off >= end) { exit(11); }
        char form = input_buf[off];
        off++;
        attrs_seen++;
        if (form == 0x0b) { off += 1; }        /* data1 */
        else if (form == 0x05) { off += 2; }   /* data2 */
        else if (form == 0x06) { off += 4; }   /* data4 */
        else if (form == 0x08) {               /* inline string */
            while (off < end && input_buf[off]) { off++; }
            off++;
            strings_touched++;
        } else if (form == 0x0e) { off += 4; } /* strp */
        else { exit(12); }
    }
    int has_children = (int)(code & 1);
    if (has_children) {
        while (off < end) {
            long next = walk_die(off, end, depth + 1);
            if (next == off) { break; }
            long peek = read_uleb(off);
            off = next;
            if (peek == 0) { break; }
        }
    }
    return off;
}

long parse_debug_info(long off, long size) {
    long end = off + size;
    if (off + 11 > end) { exit(6); }
    cu_length = rd_u32(input_buf + off);
    long version = rd_u16(input_buf + off + 4);
    if (version < 2 || version > 5) { exit(7); }
    char *cu_copy = (char*)malloc(size + 1);
    memcpy(cu_copy, input_buf + off, size);
    long cursor = off + 11;
    while (cursor < end) {
        long next = walk_die(cursor, end, 0);
        if (next <= cursor) { break; }
        cursor = next;
    }
    free(cu_copy);
    return cursor;
}

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    input_len = fread(input_buf, 1, 1024, f);
    fclose(f);
    if (input_len < 52) { exit(2); }
    if (input_buf[0] != 0x7f || input_buf[1] != 'E'
        || input_buf[2] != 'L' || input_buf[3] != 'F') { exit(3); }
    long shoff = rd_u32(input_buf + 32);
    long shnum = rd_u16(input_buf + 48);
    if (shnum == 0 || shnum > 12) { exit(4); }
    if (shoff + shnum * 40 > input_len) { exit(5); }
    int found = 0;
    for (long i = 0; i < shnum; i++) {
        char *sh = input_buf + shoff + i * 40;
        long type = rd_u32(sh + 4);
        long off = rd_u32(sh + 16);
        long size = rd_u32(sh + 20);
        if (off + size > input_len) { exit(13); }
        if (type == 0x70000001) {              /* our .debug_info tag */
            parse_debug_info(off, size);
            found++;
        }
    }
    return found > 0 && dies_seen > 0 ? 0 : 1;
}
"""


def _elf_with_debug(debug_payload: bytes) -> bytes:
    header_size = 52
    off = header_size
    out = bytearray()
    out += b"\x7fELF" + bytes([1, 1, 1]) + bytes(9)
    out += struct.pack("<HHI", 1, 62, 1)
    out += struct.pack("<III", 0, 0, off + len(debug_payload))
    out += struct.pack("<IHHHHHH", 0, header_size, 0, 0, 40, 1, 0)
    out += debug_payload
    out += struct.pack("<10I", 1, 0x70000001, 0, 0, off,
                       len(debug_payload), 0, 0, 4, 0)
    return bytes(out)


def _cu(dies: bytes) -> bytes:
    body_len = 7 + len(dies)
    return struct.pack("<IHBI", body_len, 4, 8, 0)[:11] + dies


def _die(code: int, attrs: list[tuple[int, bytes]]) -> bytes:
    out = bytes([code, len(attrs)])
    for form, payload in attrs:
        out += bytes([form]) + payload
    return out


def _seeds() -> list[bytes]:
    simple = _die(2, [(0x0B, b"\x07")])
    with_string = _die(2, [(0x08, b"mn\x00")])
    parent = _die(3, [(0x0B, b"\x01")]) + simple + b"\x00"
    return [
        _elf_with_debug(_cu(simple + b"\x00")),
        _elf_with_debug(_cu(with_string + simple + b"\x00")),
        _elf_with_debug(_cu(parent + b"\x00")),
    ]


SPEC = register_target(
    TargetSpec(
        name="libdwarf",
        input_format="ELF",
        image_bytes=2_800,
        source=SOURCE,
        seeds=_seeds(),
        bugs=[],
        description="DWARF DIE-tree walker modelled on libdwarf",
    )
)
