"""Hardened disk-I/O primitives: the one seam every durable byte crosses.

Every store in the repository — campaign checkpoints, the service job
journal, the experiment results streams, the content-addressed corpus
object store — ultimately writes through the two primitives here:

- :func:`atomic_write` — the full crash-consistent replace sequence:
  write to a temp file, ``fsync`` the file, ``os.replace`` over the
  destination, then ``fsync`` the **parent directory** so the rename
  itself survives power loss (a rename that is only in the directory's
  page cache is lost by a crash, silently resurrecting the old file).
  Optional generation rotation shifts the previous file to ``path.1``
  (and so on) before the replace.
- append streams (:class:`repro.store.log.AppendLog`) open-append-flush
  through the same fault seam.

Because everything funnels through this module, the disk-fault half of
the chaos plane (``FaultPlan.DISK_SITES``) needs exactly **one**
injection seam: each primitive polls the duck-typed ``faults`` object
(occurrence-indexed, like every other chaos site) and interprets the
armed site:

- ``torn-write``  — a power cut mid-write: half the payload lands,
  then the injected fault is raised (the simulated process death);
- ``enospc``      — the disk fills mid-write: a torn temp file/tail is
  left and ``OSError(ENOSPC)`` is raised, the real errno a caller
  would see and may handle;
- ``eio-fsync``   — the barrier itself fails: ``OSError(EIO)`` from
  ``fsync``, after which the data's durability is unknown;
- ``lost-rename`` — a power cut inside the rename window, before the
  parent-directory fsync made the rename durable: the temp file
  survives, the destination still holds the old content;
- ``bit-flip``    — silent bit rot: the write "succeeds" but one bit
  of the destination is flipped; only checksums catch it later.

The layering rule matches ``sim_os``/``vm``: this module never imports
``repro.chaos`` — it polls a duck-typed injector and raises what it is
given — so fault *construction* stays in the chaos plane.  Injectors
are either passed explicitly (``faults=``) or installed process-wide
with :func:`install_disk_faults` / the :func:`disk_chaos` context
manager, because a disk is process-wide state: every consumer in the
process inherits the fault plan through this one seam.
"""

from __future__ import annotations

import contextlib
import errno
import os

#: Site names polled by this module (chaos' ``FaultPlan.DISK_SITES``).
DISK_FAULT_SITES = (
    "torn-write", "enospc", "eio-fsync", "lost-rename", "bit-flip",
)

#: Process-wide injector (see module docstring); ``None`` = no chaos.
_GLOBAL_FAULTS = None


def install_disk_faults(injector) -> None:
    """Install a process-wide disk-fault injector (duck-typed: anything
    with ``poll(site) -> fault | None``).  Every store primitive that is
    not handed an explicit ``faults`` object polls this one."""
    global _GLOBAL_FAULTS
    _GLOBAL_FAULTS = injector


def clear_disk_faults() -> None:
    """Remove the process-wide disk-fault injector."""
    global _GLOBAL_FAULTS
    _GLOBAL_FAULTS = None


@contextlib.contextmanager
def disk_chaos(injector):
    """Scope a process-wide disk-fault injector to a ``with`` block."""
    install_disk_faults(injector)
    try:
        yield injector
    finally:
        clear_disk_faults()


def _poll(faults, site: str):
    """One exercise of *site* against the effective injector."""
    faults = faults if faults is not None else _GLOBAL_FAULTS
    if faults is None:
        return None
    return faults.poll(site)


def fsync_dir(path: str) -> None:
    """Fsync a directory so renames inside it survive power failure.

    Platforms whose filesystems refuse directory fsync (some network
    mounts, Windows) surface ``EINVAL``/``EBADF``; those are swallowed —
    the call is best-effort hardening, not a correctness gate the
    caller can act on.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def generation_path(path: str, generation: int) -> str:
    """Path of one rotation generation: the live file for 0, ``path.N``
    for older generations."""
    return path if generation == 0 else f"{path}.{generation}"


def rotate_generations(path: str, keep: int) -> None:
    """Shift existing generations one slot older, dropping the oldest
    (``path`` -> ``path.1`` -> ... up to *keep* files total)."""
    for generation in range(keep - 1, 0, -1):
        source = generation_path(path, generation - 1)
        if os.path.exists(source):
            os.replace(source, generation_path(path, generation))


def _flip_one_bit(path: str) -> None:
    """Silently corrupt one bit of *path* (the ``bit-flip`` site)."""
    size = os.path.getsize(path)
    if size == 0:
        return
    offset = size // 2
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([original[0] ^ 0x01]))


def atomic_write(path: str, data: bytes, keep: int = 1,
                 faults=None, fsync_parent: bool = True) -> None:
    """Crash-consistently replace *path* with *data*.

    The sequence is temp file + file fsync + generation rotation +
    ``os.replace`` + parent-directory fsync (see module docstring for
    why the last step matters).  On any failure the previous contents
    of *path* — and all older generations — are left intact; a cleanly
    failing write (``ENOSPC``, ``EIO``) also removes its temp file,
    while a simulated power cut leaves the torn temp behind exactly as
    a real crash would (``fsck`` reports and sweeps those).

    ``keep`` > 1 rotates the previous file to ``path.1`` (and so on)
    before the replace, keeping up to *keep* generations on disk.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # Pid-suffixed so concurrent writers (corpus-store object puts from
    # parallel worker processes) never interleave on one temp file.
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            fault = _poll(faults, "torn-write")
            if fault is not None:
                handle.write(data[: len(data) // 2])
                handle.flush()
                raise fault
            fault = _poll(faults, "enospc")
            if fault is not None:
                handle.write(data[: len(data) // 2])
                handle.flush()
                raise OSError(
                    errno.ENOSPC, "No space left on device (chaos)", tmp
                )
            handle.write(data)
            handle.flush()
            fault = _poll(faults, "eio-fsync")
            if fault is not None:
                raise OSError(errno.EIO, "Input/output error in fsync (chaos)",
                              tmp)
            os.fsync(handle.fileno())
    except OSError:
        # A *reported* failure (the disk said no): clean up the torn
        # temp and leave the destination untouched.
        with contextlib.suppress(OSError):
            os.remove(tmp)
        raise
    # An injected power cut (torn-write) propagates as the fault itself
    # and deliberately skips the cleanup above: crashes don't clean up.
    fault = _poll(faults, "lost-rename")
    if fault is not None:
        raise fault
    rotate_generations(path, max(1, keep))
    os.replace(tmp, path)
    if fsync_parent:
        fsync_dir(directory)
    fault = _poll(faults, "bit-flip")
    if fault is not None:
        _flip_one_bit(path)


def is_temp_artifact(name: str) -> bool:
    """Whether a file name is one of :func:`atomic_write`'s temp files
    (possibly orphaned by a crash in the rename window)."""
    return ".tmp-" in name or name.endswith(".tmp")
