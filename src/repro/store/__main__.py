"""CLI for the durable-storage plane.

```
python -m repro.store fsck  [ROOT] [--repair] [--json PATH]
python -m repro.store scrub ROOT  [--no-repair]
python -m repro.store stats ROOT
```

``fsck`` walks a state tree validating every store artifact it finds
(checkpoint generation families, append logs, corpus stores, temp
residue, plain JSON) and exits **0** iff the tree is loadable — only
unrepaired errors fail it; warnings are expected crash residue.  With
``--repair`` everything fixable is fixed in place; ``--json`` writes
the machine-readable report (the CI artifact).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.store.errors import StoreError
from repro.store.fsck import fsck_tree
from repro.store.objects import open_store


def _cmd_fsck(args) -> int:
    report = fsck_tree(args.root, repair=args.repair)
    payload = report.to_json()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    for finding in report.findings:
        status = "repaired" if finding.repaired else finding.severity
        print(f"[{status}] {finding.kind}: {finding.path}")
        print(f"    {finding.detail}")
    print(
        f"fsck {args.root}: {'ok' if report.ok else 'NOT OK'} — "
        f"{payload['errors']} error(s), {payload['warnings']} warning(s), "
        f"{payload['repaired']} repaired, "
        f"{report.stores_scanned} corpus store(s) scanned"
    )
    return 0 if report.ok else 1


def _cmd_scrub(args) -> int:
    try:
        store = open_store(args.root)
    except StoreError as error:
        print(error, file=sys.stderr)
        return 2
    report = store.scrub(repair=not args.no_repair)
    print(
        f"scrub {args.root}: {report.checked} object(s) checked, "
        f"{len(report.repaired)} repaired, "
        f"{len(report.quarantined)} quarantined"
    )
    return 0 if report.clean else 1


def _cmd_stats(args) -> int:
    try:
        store = open_store(args.root)
    except StoreError as error:
        print(error, file=sys.stderr)
        return 2
    print(json.dumps(store.stats(), indent=2, sort_keys=True))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="inspect and repair the durable-storage plane",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fsck = commands.add_parser(
        "fsck", help="walk a state tree, report corruption, repair"
    )
    fsck.add_argument("root", nargs="?", default=".",
                      help="state tree to walk (default: cwd)")
    fsck.add_argument("--repair", action="store_true",
                      help="fix everything fixable in place")
    fsck.add_argument("--json", metavar="PATH",
                      help="write the machine-readable report here")
    fsck.set_defaults(run=_cmd_fsck)

    scrub = commands.add_parser(
        "scrub", help="verify every object of one corpus store"
    )
    scrub.add_argument("root", help="corpus store root")
    scrub.add_argument("--no-repair", action="store_true",
                       help="report rot without repairing/quarantining")
    scrub.set_defaults(run=_cmd_scrub)

    stats = commands.add_parser(
        "stats", help="object/owner/byte counts of one corpus store"
    )
    stats.add_argument("root", help="corpus store root")
    stats.set_defaults(run=_cmd_stats)

    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
