"""``fsck`` for the durable-storage plane: walk, report, repair.

One sweep over a state tree covers every store species this repository
writes, because they all share the same small set of on-disk shapes:

- **temp artifacts** (``*.tmp-<pid>`` / ``*.tmp``) orphaned by a crash
  inside :func:`~repro.store.io.atomic_write`'s rename window — always
  a warning (the destination is intact by construction); repair sweeps
  them;
- **framed files** (RPRCKPT1 checkpoints and their rotated
  generations) — grouped by base path and validated newest-first: a
  corrupt generation *with* a loadable one behind it is a warning (the
  loader's fallback already survives it; repair deletes the corrupt
  generation), while a base with **no** loadable generation is an
  unrecoverable error;
- **append logs** (``*.jsonl``) — a torn tail is a warning (readers
  drop it; repair truncates back to the last newline), unparsable
  records before the tail are an error (repair truncates the log to
  its valid prefix);
- **corpus stores** (directories carrying the
  ``corpus-store.json`` marker) — scrubbed object-by-object (bit rot
  repaired from the mirror replica or quarantined), reference logs
  checked like any append log, and dangling references (an owner
  naming an object that no longer exists) reported and, on repair,
  dropped;
- **plain JSON files** — parsed; failure is an error (there is no
  generic repair for single-copy JSON).

The exit-code contract (``python -m repro.store fsck``): **0** when
every store is *loadable* — unrepaired errors are the only thing that
fails the tree; warnings (expected crash residue) never do.
"""

from __future__ import annotations

import dataclasses
import json
import os

from repro.store.framed import read_framed
from repro.store.io import is_temp_artifact
from repro.store.log import AppendLog
from repro.store.objects import STORE_MARKER, CorpusStore
from repro.store.errors import FrameError

#: Magics of framed-file species fsck knows how to validate.
FRAMED_MAGICS = (b"RPRCKPT1",)


@dataclasses.dataclass
class Finding:
    """One damaged (or repaired) artifact found by :func:`fsck_tree`."""

    path: str
    kind: str         # e.g. "stray-temp", "torn-tail", "checkpoint-unrecoverable"
    severity: str     # "warning" (expected crash residue) or "error"
    detail: str
    repaired: bool = False

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class FsckReport:
    """Everything one fsck sweep found."""

    root: str
    findings: list[Finding]
    stores_scanned: int = 0

    @property
    def ok(self) -> bool:
        """Whether the tree is loadable: no unrepaired errors."""
        return all(
            finding.severity != "error" or finding.repaired
            for finding in self.findings
        )

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def to_json(self) -> dict:
        return {
            "root": self.root,
            "ok": self.ok,
            "stores_scanned": self.stores_scanned,
            "errors": sum(1 for f in self.errors if not f.repaired),
            "repaired": sum(1 for f in self.findings if f.repaired),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }


def _framed_magic(path: str) -> bytes | None:
    """The known framing magic *path* starts with, if any."""
    try:
        with open(path, "rb") as handle:
            head = handle.read(max(len(m) for m in FRAMED_MAGICS))
    except OSError:
        return None
    for magic in FRAMED_MAGICS:
        if head.startswith(magic):
            return magic
    return None


def _generation_base(path: str) -> str:
    """Strip a trailing rotation suffix (``.N``) from a generation
    path, giving the base the loader starts from."""
    root, ext = os.path.splitext(path)
    if ext[1:].isdigit():
        return root
    return path


def _check_framed_group(base: str, members: dict[str, bytes],
                        repair: bool, findings: list[Finding]) -> None:
    """Validate one checkpoint's generation family (see module
    docstring for the warning/error split)."""
    failures: dict[str, str] = {}
    loadable = False
    for path, magic in sorted(members.items()):
        try:
            read_framed(path, magic)
            loadable = True
        except FrameError as error:
            failures[path] = str(error)
    for path, detail in failures.items():
        if loadable:
            finding = Finding(path, "corrupt-generation", "warning", detail)
            if repair:
                os.remove(path)
                finding.repaired = True
            findings.append(finding)
        else:
            findings.append(
                Finding(path, "checkpoint-unrecoverable", "error", detail)
            )
    if not loadable and not failures:
        findings.append(
            Finding(base, "checkpoint-unrecoverable", "error",
                    "no generation present")
        )


def _check_log(path: str, repair: bool, findings: list[Finding]) -> None:
    """Scan one JSONL append log for torn tails and corruption."""
    log = AppendLog(path)
    records, damage = log.scan()
    for found in damage:
        if found.kind == "torn-tail":
            finding = Finding(
                path, "torn-tail", "warning",
                f"partial record at byte offset {found.byte_offset} "
                f"(line {found.line_number}): {found.detail}",
            )
            if repair:
                log.repair_tail()
                finding.repaired = True
        else:
            finding = Finding(
                path, "log-corruption", "error",
                f"corrupt record at byte offset {found.byte_offset} "
                f"(line {found.line_number}): {found.detail}",
            )
            if repair:
                log.rewrite(records)
                finding.repaired = True
        findings.append(finding)


def _check_json(path: str, findings: list[Finding]) -> None:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            json.load(handle)
    except (OSError, ValueError) as error:
        findings.append(Finding(path, "bad-json", "error", str(error)))


def _check_store(root: str, repair: bool, findings: list[Finding]) -> None:
    """Scrub one corpus store and validate its reference graph."""
    store = CorpusStore(root)
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if is_temp_artifact(name):
                finding = Finding(
                    os.path.join(dirpath, name), "stray-temp", "warning",
                    "orphaned atomic-write temp file (crash residue)",
                )
                if repair:
                    os.remove(finding.path)
                    finding.repaired = True
                findings.append(finding)
    for owner in store.owners():
        _check_log(store.ref_log_path(owner), repair, findings)
    report = store.scrub(repair=repair)
    for digest in report.repaired:
        findings.append(
            Finding(store.object_path(digest), "object-rot", "warning",
                    f"object {digest} repaired from replica", repaired=True)
        )
    for digest in report.degraded:
        findings.append(
            Finding(store.object_path(digest), "object-rot", "warning",
                    f"object {digest} fails verification but has a healthy "
                    "replica (run with --repair to restore)")
        )
    for digest in report.quarantined:
        finding = Finding(
            store.object_path(digest), "object-unrecoverable", "error",
            f"object {digest} fails verification with no healthy replica"
            + ("; quarantined" if repair else ""),
        )
        findings.append(finding)
    present = set(store.objects())
    for owner in store.owners():
        missing = sorted(store.refs(owner) - present)
        if not missing:
            continue
        finding = Finding(
            store.ref_log_path(owner), "dangling-ref", "error",
            f"owner {owner!r} references {len(missing)} missing "
            f"object(s): {', '.join(missing[:3])}"
            + ("..." if len(missing) > 3 else ""),
        )
        if repair:
            store.retain(owner, store.refs(owner) - set(missing))
            finding.repaired = True
        findings.append(finding)


def fsck_tree(root: str, repair: bool = False) -> FsckReport:
    """Walk *root*, validating every store artifact (see module
    docstring); with *repair*, fix everything fixable in place."""
    findings: list[Finding] = []
    stores = 0
    framed_groups: dict[str, dict[str, bytes]] = {}
    for dirpath, dirnames, filenames in os.walk(root):
        if STORE_MARKER in filenames:
            stores += 1
            _check_store(dirpath, repair, findings)
            dirnames[:] = []  # the store check covers this subtree
            continue
        dirnames.sort()
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            if is_temp_artifact(name):
                finding = Finding(
                    path, "stray-temp", "warning",
                    "orphaned atomic-write temp file (crash residue)",
                )
                if repair:
                    os.remove(path)
                    finding.repaired = True
                findings.append(finding)
                continue
            magic = _framed_magic(path)
            if magic is not None:
                base = _generation_base(path)
                framed_groups.setdefault(base, {})[path] = magic
                continue
            if name.endswith(".jsonl"):
                _check_log(path, repair, findings)
            elif name.endswith(".json"):
                _check_json(path, findings)
    for base, members in sorted(framed_groups.items()):
        _check_framed_group(base, members, repair, findings)
    return FsckReport(root=root, findings=findings, stores_scanned=stores)
