"""Torn-tail-tolerant JSONL append logs.

Every append-only stream in the repository — the service job journal,
the experiment platform's per-trial result streams, the corpus store's
per-owner reference logs — shares one durability story:

- records are **canonical JSON** (sorted keys, no whitespace), one per
  line, so stream bytes are a pure function of the record sequence;
- each append is flushed (a death of *this* process loses nothing) and
  fsynced on a configurable cadence, with ``sync=True`` forcing the
  barrier for records whose durability is part of a protocol (e.g. the
  service's journal-before-ack rule);
- a **torn tail** — a partial final line left by a crash or ``ENOSPC``
  mid-append — is *expected* damage: readers keep the valid prefix and
  drop the tail, and the next append repairs the file by truncating
  back to the last newline before writing, so a store that ran out of
  space resumes cleanly once space returns;
- an unparsable record *before* the tail is **real corruption** (bit
  rot, an overwrite): :meth:`AppendLog.read` raises
  :class:`~repro.store.errors.LogCorruption` naming the byte offset
  and line number, while :meth:`AppendLog.scan` returns the valid
  prefix plus a damage report for ``fsck`` to act on.

Appends poll the same disk-fault seam as :func:`repro.store.io
.atomic_write` (``torn-write`` / ``enospc`` tear the line mid-write,
``eio-fsync`` fails the barrier), so chaos coverage reaches every
consumer through this one class.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import os

from repro.store.errors import LogCorruption
from repro.store.io import _poll, atomic_write


def canonical_line(record: dict) -> str:
    """One record in canonical JSON form (no newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


@dataclasses.dataclass(frozen=True)
class LogDamage:
    """One damaged region found by :meth:`AppendLog.scan`."""

    kind: str          # "torn-tail" (expected) or "corrupt" (real damage)
    byte_offset: int   # where the damaged record starts
    line_number: int   # 1-based line of the damaged record
    detail: str        # the parse failure


class AppendLog:
    """One torn-tail-tolerant JSONL stream (see module docstring).

    ``fsync_every`` batches the per-append barrier exactly like the
    experiment store always did: every append is flushed, the fsync is
    paid once per *fsync_every* appends, and ``append(..., sync=True)``
    forces it for protocol-critical records.
    """

    def __init__(self, path: str, fsync_every: int = 1, faults=None):
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = os.fspath(path)
        self.fsync_every = fsync_every
        self.faults = faults
        self._pending = 0
        self._tail_checked = False
        os.makedirs(os.path.dirname(os.path.abspath(self.path)),
                    exist_ok=True)

    # -- writes ----------------------------------------------------------

    def append(self, record: dict, sync: bool = False) -> None:
        """Append one record, flushed always, fsynced on cadence or when
        *sync* is set.  A failed append (injected or real) may leave a
        torn tail; the next successful append repairs it first."""
        if not self._tail_checked:
            self.repair_tail()
        line = (canonical_line(record) + "\n").encode("utf-8")
        barrier = sync or self._pending + 1 >= self.fsync_every
        with open(self.path, "ab") as handle:
            fault = _poll(self.faults, "torn-write")
            if fault is not None:
                handle.write(line[: len(line) // 2])
                handle.flush()
                self._tail_checked = False
                raise fault
            fault = _poll(self.faults, "enospc")
            if fault is not None:
                handle.write(line[: len(line) // 2])
                handle.flush()
                self._tail_checked = False
                raise OSError(
                    errno.ENOSPC, "No space left on device (chaos)",
                    self.path,
                )
            handle.write(line)
            handle.flush()
            if barrier:
                fault = _poll(self.faults, "eio-fsync")
                if fault is not None:
                    raise OSError(
                        errno.EIO, "Input/output error in fsync (chaos)",
                        self.path,
                    )
                os.fsync(handle.fileno())
        self._pending = 0 if barrier else self._pending + 1

    def sync(self) -> None:
        """Force the disk barrier now (no-op when nothing is pending)."""
        if not self._pending or not os.path.exists(self.path):
            self._pending = 0
            return
        with open(self.path, "ab") as handle:
            fault = _poll(self.faults, "eio-fsync")
            if fault is not None:
                raise OSError(
                    errno.EIO, "Input/output error in fsync (chaos)",
                    self.path,
                )
            os.fsync(handle.fileno())
        self._pending = 0

    def repair_tail(self) -> int:
        """Truncate a torn trailing segment back to the last newline,
        returning how many bytes were dropped (0 for a clean tail)."""
        self._tail_checked = True
        if not os.path.exists(self.path):
            return 0
        with open(self.path, "rb") as handle:
            data = handle.read()
        if not data or data.endswith(b"\n"):
            return 0
        keep = data.rfind(b"\n") + 1
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)
        return len(data) - keep

    def rewrite(self, records: list[dict]) -> None:
        """Atomically replace the whole stream with *records* (used by
        resume truncation and fsck repair)."""
        body = "".join(
            canonical_line(record) + "\n" for record in records
        ).encode("utf-8")
        atomic_write(self.path, body, faults=self.faults)
        self._pending = 0
        self._tail_checked = True

    # -- reads -----------------------------------------------------------

    def scan(self) -> tuple[list[dict], list[LogDamage]]:
        """The valid record prefix plus a report of any damage.

        A final partial line is ``torn-tail`` damage; an unparsable
        record with bytes after it is ``corrupt`` damage and ends the
        prefix (everything past real corruption is untrusted).
        """
        records: list[dict] = []
        damage: list[LogDamage] = []
        if not os.path.exists(self.path):
            return records, damage
        with open(self.path, "rb") as handle:
            data = handle.read()
        offset = 0
        line_number = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            final = newline < 0
            segment = data[offset:] if final else data[offset:newline]
            line_number += 1
            text = segment.strip()
            if text:
                try:
                    records.append(json.loads(text))
                except (ValueError, UnicodeDecodeError) as error:
                    kind = "torn-tail" if final else "corrupt"
                    damage.append(
                        LogDamage(kind, offset, line_number, str(error))
                    )
                    if not final:
                        break
            offset = len(data) if final else newline + 1
        return records, damage

    def read(self) -> list[dict]:
        """All records (empty if absent).  A torn tail is silently
        dropped — the valid prefix is the stream's state — while
        mid-stream corruption raises :class:`LogCorruption` with the
        byte offset and line number of the damaged record."""
        records, damage = self.scan()
        for found in damage:
            if found.kind == "corrupt":
                raise LogCorruption(
                    self.path, found.byte_offset, found.line_number,
                    found.detail,
                )
        return records
