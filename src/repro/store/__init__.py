"""repro.store — the durable-storage plane.

Every byte this repository persists — campaign checkpoints (RPRCKPT1),
the service job journal, experiment result streams, corpus payloads —
crosses one of three primitives here, and therefore inherits one
durability stack and one chaos seam:

- :func:`atomic_write` / :func:`write_framed` — crash-consistent
  replace (temp + fsync + rename + parent-dir fsync) with CRC32
  framing and rotating generations;
- :class:`AppendLog` — torn-tail-tolerant canonical-JSONL streams;
- :class:`CorpusStore` — a content-addressed (sha256) object store
  with refcounted cross-campaign dedup, afl-cmin distillation,
  pruning, and a bit-rot scrub/repair pass.

The disk-fault half of the chaos plane (``FaultPlan.DISK_SITES``)
injects through these primitives alone — arm an injector process-wide
with :func:`install_disk_faults` / :func:`disk_chaos` and every store
in the process inherits the fault plan.  ``python -m repro.store fsck``
walks a state tree, reports corruption, and repairs what is repairable.
"""

from repro.store.errors import (
    FrameError,
    LogCorruption,
    ObjectCorruption,
    StoreError,
)
from repro.store.framed import (
    frame,
    load_newest,
    read_framed,
    write_framed,
)
from repro.store.fsck import Finding, FsckReport, fsck_tree
from repro.store.io import (
    DISK_FAULT_SITES,
    atomic_write,
    clear_disk_faults,
    disk_chaos,
    fsync_dir,
    generation_path,
    install_disk_faults,
    is_temp_artifact,
    rotate_generations,
)
from repro.store.log import AppendLog, LogDamage, canonical_line
from repro.store.objects import (
    STORE_MARKER,
    CorpusStore,
    ScrubReport,
    object_digest,
    open_store,
)

__all__ = [
    "AppendLog",
    "CorpusStore",
    "DISK_FAULT_SITES",
    "Finding",
    "FrameError",
    "FsckReport",
    "LogCorruption",
    "LogDamage",
    "ObjectCorruption",
    "STORE_MARKER",
    "ScrubReport",
    "StoreError",
    "atomic_write",
    "canonical_line",
    "clear_disk_faults",
    "disk_chaos",
    "frame",
    "fsck_tree",
    "fsync_dir",
    "generation_path",
    "install_disk_faults",
    "is_temp_artifact",
    "load_newest",
    "object_digest",
    "open_store",
    "read_framed",
    "rotate_generations",
    "write_framed",
]
