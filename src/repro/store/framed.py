"""CRC32-framed record files with rotating generations.

The framing is the one the ``RPRCKPT1`` checkpoint format defined
(magic + little-endian CRC32 of the body + body), generalised so any
store can use it: the magic string is the caller's, carrying both the
file's species and its protocol revision.  Readers validate magic →
length → CRC before handing the body back, and every failure mode
names the file, the **byte offset**, and — for checksum failures — the
expected and actual CRC values, so triage never starts from a bare
"unpickling error".

Writes go through :func:`repro.store.io.atomic_write`, inheriting the
full durability stack (temp + fsync + rename + parent-dir fsync +
generation rotation) and the disk-fault chaos seam.
"""

from __future__ import annotations

import os
import zlib

from repro.store.errors import FrameError
from repro.store.io import atomic_write, generation_path

_CRC_BYTES = 4


def frame(magic: bytes, body: bytes) -> bytes:
    """Frame *body* for storage: magic + CRC32(body) + body."""
    return magic + zlib.crc32(body).to_bytes(_CRC_BYTES, "little") + body


def write_framed(path: str, magic: bytes, body: bytes,
                 keep: int = 1, faults=None) -> None:
    """Atomically persist one framed file, keeping *keep* generations
    (the fresh file at *path*, the previous at ``path.1``, ...)."""
    atomic_write(path, frame(magic, body), keep=keep, faults=faults)


def read_framed(path: str, magic: bytes) -> bytes:
    """Read and fully validate one framed file, returning the body.

    Raises :class:`FrameError` — naming the file, the byte offset of
    the failure, and expected/actual CRC values where applicable — on
    any of: unreadable file, wrong magic, truncated header, checksum
    mismatch.
    """
    try:
        with open(path, "rb") as handle:
            payload = handle.read()
    except OSError as error:
        raise FrameError(f"cannot read {path!r}: {error}", path=path)
    header_end = len(magic) + _CRC_BYTES
    if not payload.startswith(magic):
        raise FrameError(
            f"{path!r} is not a {magic.decode('ascii', 'replace')}-framed "
            f"file (bad magic at byte offset 0)",
            path=path,
        )
    if len(payload) < header_end:
        raise FrameError(
            f"truncated header in {path!r}: {len(payload)} bytes, "
            f"need {header_end}",
            path=path,
        )
    expected_crc = int.from_bytes(payload[len(magic):header_end], "little")
    body = payload[header_end:]
    actual_crc = zlib.crc32(body)
    if actual_crc != expected_crc:
        raise FrameError(
            f"{path!r} failed CRC over the {len(body)}-byte body at "
            f"byte offset {header_end}: expected {expected_crc:08x}, "
            f"actual {actual_crc:08x}",
            path=path,
        )
    return body


def generations_on_disk(path: str) -> list[str]:
    """Generation files present for *path*, newest first.

    The live file is listed (first) even when missing — mirroring the
    loader, which always consults it — while older generations are
    listed only while consecutively present.
    """
    found = [path]
    generation = 1
    while True:
        candidate = generation_path(path, generation)
        if not os.path.exists(candidate):
            break
        found.append(candidate)
        generation += 1
    return found


def load_newest(path: str, magic: bytes) -> tuple[bytes, str]:
    """Body + path of the newest generation passing validation.

    Falls back through ``path``, ``path.1``, ``path.2``, ...; raises a
    :class:`FrameError` naming every generation tried with its
    individual failure when none is loadable.
    """
    failures: list[str] = []
    tried = generations_on_disk(path)
    for candidate in tried:
        try:
            return read_framed(candidate, magic), candidate
        except FrameError as error:
            failures.append(str(error))
    raise FrameError(
        f"no loadable generation (tried {', '.join(tried)}): "
        + "; ".join(failures),
        path=path,
    )
