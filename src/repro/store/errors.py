"""Error taxonomy of the durable-storage plane.

One base class so callers can catch "the store is damaged" uniformly,
with subclasses carrying the forensic detail (path, byte offset, CRC
values) each failure mode can name.  The experiment platform's
``StoreError`` is this base class re-exported, so pre-existing
``except StoreError`` sites keep working across the refactor.
"""

from __future__ import annotations


class StoreError(RuntimeError):
    """A durable store that cannot be read or extended as asked."""


class FrameError(StoreError):
    """A CRC32-framed file failing validation (magic, length, CRC).

    The message always names the file and the byte offset of the
    failure; checksum failures additionally carry the expected and
    actual CRC32 values.
    """

    def __init__(self, message: str, path: str = ""):
        super().__init__(message)
        self.path = path


class LogCorruption(StoreError):
    """A JSONL append log damaged *before* its tail.

    A torn tail (a crash mid-append) is expected damage and silently
    dropped by readers; an unparsable record with valid records after
    it is real corruption and raises this, naming the file, the byte
    offset, and the 1-based line number of the bad record.
    """

    def __init__(self, path: str, byte_offset: int, line_number: int,
                 detail: str):
        self.path = path
        self.byte_offset = byte_offset
        self.line_number = line_number
        self.detail = detail
        super().__init__(
            f"corrupt record in {path!r} at byte offset {byte_offset} "
            f"(line {line_number}): {detail}"
        )


class ObjectCorruption(StoreError):
    """A corpus-store object whose content no longer matches its digest."""

    def __init__(self, digest: str, path: str, actual: str):
        self.digest = digest
        self.path = path
        self.actual = actual
        super().__init__(
            f"object {digest} at {path!r} fails verification: "
            f"content hashes to {actual}"
        )
