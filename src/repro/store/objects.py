"""Content-addressed corpus object store with dedup, distillation,
pruning, and scrub.

Millions of inputs across campaigns and tenants are mostly the *same*
inputs: every shard of a parallel campaign re-discovers the seed set,
cross-pollinated entries exist verbatim on both sides, and repeated
experiment trials regenerate identical corpora.  Storing payloads by
their sha256 digest makes all of that one copy:

```
<root>/
  corpus-store.json       # schema marker (how fsck finds stores)
  objects/<aa>/<digest>   # the payload, named by its sha256
  mirror/<aa>/<digest>    # replica used by scrub to repair bit rot
  refs/<owner>.jsonl      # per-owner reference log (AppendLog)
  quarantine/<digest>     # corrupt objects with no healthy replica
```

Owners — one per campaign shard, tenant job, or experiment trial —
reference objects through append-only logs, so liveness is refcounted:
:meth:`CorpusStore.prune` removes objects no owner references,
:meth:`CorpusStore.release` drops a whole owner.  Object digests
deliberately use the same sha256 hex as the fuzzing plane's
``input_hash``, so a corpus entry's content hash *is* its store
address and the parallel SyncHub can exchange digests instead of
payloads.

Against bit rot, every object is write-once and self-verifying: reads
recompute the digest, a mismatch repairs from the mirror replica when
it is healthy and quarantines otherwise, and :meth:`CorpusStore.scrub`
sweeps the whole store doing the same (both directions — a rotted
mirror is repaired from a healthy primary too).

:meth:`CorpusStore.distill` is afl-cmin for the virtual fuzzing plane:
given ``(digest, classified coverage signature, weight)`` triples it
greedily selects a minimal seed set — cheapest first — whose OR over
signatures equals the full corpus's, at bit granularity (hit-count
buckets included, not just edges).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os

from repro.store.errors import ObjectCorruption, StoreError
from repro.store.io import atomic_write, fsync_dir, is_temp_artifact
from repro.store.log import AppendLog
from repro.telemetry import NULL_TELEMETRY

#: Written to the store root so ``fsck`` recognises store trees.
STORE_MARKER = "corpus-store.json"
STORE_SCHEMA = "repro-corpus-store/1"


def object_digest(data: bytes) -> str:
    """The store address of a payload: its sha256 hex digest (equal to
    the fuzzing plane's ``input_hash``)."""
    return hashlib.sha256(data).hexdigest()


@dataclasses.dataclass(frozen=True)
class ScrubReport:
    """Outcome of one :meth:`CorpusStore.scrub` sweep."""

    checked: int
    repaired: tuple[str, ...]      # digests restored from their replica
    degraded: tuple[str, ...]      # rot found, healthy replica exists,
                                   # repair was off (still fully readable)
    quarantined: tuple[str, ...]   # digests with no healthy copy left

    @property
    def clean(self) -> bool:
        """Whether every object is readable (possibly after repair —
        degraded objects still resolve through their replica)."""
        return not self.quarantined


class CorpusStore:
    """Filesystem-backed content-addressed object store (see module
    docstring for layout and contracts).

    ``replicate=False`` drops the mirror copy — half the disk, but
    scrub can then only quarantine, never repair.  All writes go
    through :func:`repro.store.io.atomic_write`, so the store inherits
    the full durability stack and the disk-fault chaos seam.
    """

    def __init__(self, root: str, replicate: bool = True, faults=None,
                 telemetry=NULL_TELEMETRY):
        self.root = os.fspath(root)
        self.replicate = replicate
        self.faults = faults
        self.telemetry = telemetry
        self.objects_dir = os.path.join(self.root, "objects")
        self.mirror_dir = os.path.join(self.root, "mirror")
        self.refs_dir = os.path.join(self.root, "refs")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        os.makedirs(self.objects_dir, exist_ok=True)
        os.makedirs(self.refs_dir, exist_ok=True)
        self._refs: dict[str, set[str]] = {}
        self._ref_logs: dict[str, AppendLog] = {}
        marker = os.path.join(self.root, STORE_MARKER)
        if not os.path.exists(marker):
            atomic_write(
                marker,
                json.dumps(
                    {"schema": STORE_SCHEMA, "replicate": replicate},
                    sort_keys=True,
                ).encode("utf-8"),
                faults=faults,
            )

    # -- paths -----------------------------------------------------------

    def object_path(self, digest: str) -> str:
        """Where the payload for *digest* lives."""
        return os.path.join(self.objects_dir, digest[:2], digest)

    def mirror_path(self, digest: str) -> str:
        """Where the replica for *digest* lives."""
        return os.path.join(self.mirror_dir, digest[:2], digest)

    def ref_log_path(self, owner: str) -> str:
        """The owner's reference log."""
        return os.path.join(self.refs_dir, f"{owner}.jsonl")

    def _ref_log(self, owner: str) -> AppendLog:
        log = self._ref_logs.get(owner)
        if log is None:
            log = AppendLog(self.ref_log_path(owner), faults=self.faults)
            self._ref_logs[owner] = log
        return log

    def _count(self, name: str, amount: int = 1) -> None:
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(name).inc(amount)

    # -- writes ----------------------------------------------------------

    def put(self, data: bytes, owner: str | None = None) -> str:
        """Store a payload, returning its digest.

        Idempotent: an already-present object is a dedup hit and costs
        no write.  With *owner*, a reference is recorded (once per
        owner — repeated puts of the same digest by the same owner
        append nothing).
        """
        digest = object_digest(data)
        path = self.object_path(digest)
        if os.path.exists(path):
            self._count("store.objects.dedup_hits")
        else:
            atomic_write(path, data, faults=self.faults)
            self._count("store.objects.put")
            self._count("store.objects.bytes", len(data))
        if self.replicate and not os.path.exists(self.mirror_path(digest)):
            atomic_write(self.mirror_path(digest), data, faults=self.faults)
        if owner is not None:
            self._reference(owner, digest)
        return digest

    def _reference(self, owner: str, digest: str) -> None:
        held = self.refs(owner)
        if digest in held:
            return
        self._ref_log(owner).append({"op": "add", "digest": digest})
        held.add(digest)

    # -- reads -----------------------------------------------------------

    def has(self, digest: str) -> bool:
        """Whether an object is present (no verification)."""
        return os.path.exists(self.object_path(digest))

    def get(self, digest: str) -> bytes:
        """The verified payload for *digest*.

        A digest mismatch (bit rot) is repaired from the mirror replica
        when the replica verifies; otherwise the corrupt object is
        moved to ``quarantine/`` and :class:`ObjectCorruption` is
        raised.
        """
        path = self.object_path(digest)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            data = None
        if data is not None and object_digest(data) == digest:
            return data
        repaired = self._repair(digest)
        if repaired is not None:
            return repaired
        actual = object_digest(data) if data is not None else "<unreadable>"
        self._quarantine(digest)
        raise ObjectCorruption(digest, path, actual)

    def _repair(self, digest: str) -> bytes | None:
        """Restore a rotted object from its mirror replica, returning
        the healthy payload (or ``None`` when the replica is missing or
        rotted too)."""
        mirror = self.mirror_path(digest)
        try:
            with open(mirror, "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        if object_digest(data) != digest:
            return None
        atomic_write(self.object_path(digest), data, faults=self.faults)
        self._count("store.scrub.repaired")
        return data

    def _quarantine(self, digest: str) -> None:
        os.makedirs(self.quarantine_dir, exist_ok=True)
        path = self.object_path(digest)
        if os.path.exists(path):
            os.replace(path, os.path.join(self.quarantine_dir, digest))
            fsync_dir(self.quarantine_dir)
        self._count("store.scrub.quarantined")

    # -- references ------------------------------------------------------

    def owners(self) -> list[str]:
        """Every owner with a reference log, name-sorted."""
        return sorted(
            name[: -len(".jsonl")]
            for name in os.listdir(self.refs_dir)
            if name.endswith(".jsonl")
        )

    def refs(self, owner: str) -> set[str]:
        """The digests *owner* currently references."""
        held = self._refs.get(owner)
        if held is None:
            held = set()
            log = self._ref_log(owner)
            if os.path.exists(log.path):
                records, _damage = log.scan()
                for record in records:
                    if record.get("op") == "add":
                        held.add(record["digest"])
                    elif record.get("op") == "drop":
                        held.discard(record["digest"])
            self._refs[owner] = held
        return held

    def refcount(self, digest: str) -> int:
        """How many owners reference *digest*."""
        return sum(1 for owner in self.owners() if digest in self.refs(owner))

    def retain(self, owner: str, digests) -> int:
        """Rewrite the owner's references to exactly *digests* (the
        coverage-based pruning hook: pass the distilled set to drop the
        rest).  Returns how many references were dropped."""
        keep = set(digests)
        held = self.refs(owner)
        dropped = len(held - keep)
        records = [
            {"op": "add", "digest": digest} for digest in sorted(keep)
        ]
        self._ref_log(owner).rewrite(records)
        self._refs[owner] = set(keep)
        return dropped

    def release(self, owner: str) -> None:
        """Drop an owner and all its references (a campaign or tenant
        leaving the store; the objects stay until :meth:`prune`)."""
        self._refs.pop(owner, None)
        self._ref_logs.pop(owner, None)
        path = self.ref_log_path(owner)
        if os.path.exists(path):
            os.remove(path)
            fsync_dir(self.refs_dir)

    # -- maintenance -----------------------------------------------------

    def objects(self) -> list[str]:
        """Every object digest on disk, sorted."""
        found: list[str] = []
        for shard in sorted(os.listdir(self.objects_dir)):
            shard_dir = os.path.join(self.objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not is_temp_artifact(name):
                    found.append(name)
        return found

    def referenced(self) -> set[str]:
        """The union of every owner's references."""
        live: set[str] = set()
        for owner in self.owners():
            live |= self.refs(owner)
        return live

    def prune(self) -> list[str]:
        """Remove objects (and replicas) no owner references, returning
        the removed digests."""
        live = self.referenced()
        removed: list[str] = []
        for digest in self.objects():
            if digest in live:
                continue
            for path in (self.object_path(digest), self.mirror_path(digest)):
                if os.path.exists(path):
                    os.remove(path)
            removed.append(digest)
        if removed:
            fsync_dir(self.objects_dir)
            self._count("store.prune.removed", len(removed))
        return removed

    def _replica_healthy(self, digest: str) -> bool:
        try:
            with open(self.mirror_path(digest), "rb") as handle:
                return object_digest(handle.read()) == digest
        except OSError:
            return False

    def scrub(self, repair: bool = True) -> ScrubReport:
        """Verify every object against its digest; with *repair*, fix
        rot from the replica (in either direction) and quarantine
        objects with no healthy copy left.  With ``repair=False``
        nothing on disk changes: repairable rot is reported as
        *degraded*, unrecoverable rot as *quarantined*-to-be."""
        repaired: list[str] = []
        degraded: list[str] = []
        quarantined: list[str] = []
        checked = 0
        for digest in self.objects():
            checked += 1
            path = self.object_path(digest)
            with open(path, "rb") as handle:
                data = handle.read()
            healthy = object_digest(data) == digest
            if not healthy:
                if not repair:
                    if self._replica_healthy(digest):
                        degraded.append(digest)
                    else:
                        quarantined.append(digest)
                elif self._repair(digest) is not None:
                    repaired.append(digest)
                else:
                    self._quarantine(digest)
                    quarantined.append(digest)
                continue
            if self.replicate and not self._replica_healthy(digest):
                if repair:
                    atomic_write(self.mirror_path(digest), data,
                                 faults=self.faults)
                    repaired.append(digest)
                else:
                    degraded.append(digest)
        self._count("store.scrub.checked", checked)
        return ScrubReport(
            checked, tuple(repaired), tuple(degraded), tuple(quarantined)
        )

    # -- distillation ----------------------------------------------------

    def distill(self, entries) -> list[str]:
        """afl-cmin: a minimal seed set covering the full corpus's map.

        *entries* are ``(digest, signature, weight)`` triples where the
        signature is the classified coverage bytes
        (:func:`repro.fuzzing.coverage.classify` output) and weight
        orders candidates cheapest-first (e.g. ``exec_ns * len``).
        Selection is greedy at **bit** granularity: an entry is kept
        iff it sets a signature bit nothing cheaper already covered,
        which guarantees the OR over the selected signatures equals the
        OR over all of them.
        """
        ranked = sorted(entries, key=lambda entry: (entry[2], entry[0]))
        covered = 0
        selected: list[str] = []
        for digest, signature, _weight in ranked:
            bits = int.from_bytes(signature, "little")
            if bits & ~covered:
                selected.append(digest)
                covered |= bits
        self._count("store.distill.selected", len(selected))
        return selected

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict:
        """Counts and byte totals for the CLI's ``stats`` subcommand."""
        digests = self.objects()
        total_bytes = sum(
            os.path.getsize(self.object_path(digest)) for digest in digests
        )
        owners = self.owners()
        ref_total = sum(len(self.refs(owner)) for owner in owners)
        return {
            "root": self.root,
            "objects": len(digests),
            "bytes": total_bytes,
            "owners": len(owners),
            "references": ref_total,
            "referenced_objects": len(self.referenced()),
            "replicate": self.replicate,
        }


def open_store(root: str, **kwargs) -> CorpusStore:
    """Open an existing store, refusing a root that is not one."""
    marker = os.path.join(root, STORE_MARKER)
    if not os.path.exists(marker):
        raise StoreError(f"{root!r} is not a corpus store (no {STORE_MARKER})")
    return CorpusStore(root, **kwargs)
