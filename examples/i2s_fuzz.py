#!/usr/bin/env python3
"""Input-to-state fuzzing: crack a 4-byte magic havoc cannot guess.

The freetype stand-in rejects any font whose first four bytes are not
a valid sfnt version (``0x00010000`` or ``'true'``).  Starting from a
corpus of version-corrupted fonts — the common weak-seed situation —
plain havoc must line up four exact bytes; the input-to-state stage
instead *observes* the version compare inside the VM, locates the
operand bytes in the input, and patches in the expected value.

This script races the two configurations head to head on the same
virtual budget and exits non-zero unless I2S cracks the magic while
equal-budget havoc does not.

Run:  python examples/i2s_fuzz.py [virtual-ms budget, default 4]
"""

import sys

from repro.execution import ClosureXExecutor
from repro.experiments import guard_cells
from repro.fuzzing import Campaign, CampaignConfig
from repro.sim_os import Kernel
from repro.targets import get_target


def crack_time_ns(spec, seeds, cells, budget_ns, i2s_enabled):
    """First virtual instant a corpus entry passes the version guard
    (None when the campaign never cracks it)."""
    executor = ClosureXExecutor(spec.build_closurex(), spec.image_bytes,
                                Kernel())
    campaign = Campaign(executor, seeds, CampaignConfig(
        budget_ns=budget_ns, seed=1, i2s_enabled=i2s_enabled,
    ))
    campaign.run()
    hits = [
        entry.discovered_at_ns - campaign.run_start_ns
        for entry in campaign.corpus.entries
        if any(entry.coverage_signature[cell] for cell in cells)
    ]
    return min(hits) if hits else None


def main():
    budget_ms = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    budget_ns = budget_ms * 1_000_000
    spec = get_target("freetype")
    seeds = [b"\xde\xad\xbe\xef" + seed[4:] for seed in spec.seeds]
    print(f"target: {spec.name} — seeds have their sfnt version stomped, "
          f"so the 4-byte magic guards the whole parser")
    print(f"budget: {budget_ms} virtual ms per arm\n")

    # Coverage cells only a version-valid font reaches (witness minus
    # seeds minus near-miss decoy; see repro.experiments.i2s_exp).
    cells = guard_cells("freetype")

    havoc_ns = crack_time_ns(spec, seeds, cells, budget_ns, False)
    i2s_ns = crack_time_ns(spec, seeds, cells, budget_ns, True)

    def show(label, at):
        status = f"cracked at {at / 1e6:.2f} vms" if at is not None else \
            "never passed the version check"
        print(f"  {label:12} {status}")

    show("havoc-only:", havoc_ns)
    show("with I2S:", i2s_ns)

    if i2s_ns is None:
        print("\nFAIL: the I2S stage did not crack the magic")
        return 1
    if havoc_ns is not None:
        print("\nFAIL: havoc cracked the magic inside the same budget "
              "(raise the difficulty by lowering the budget)")
        return 1
    print("\nI2S read the magic out of the observed compare; havoc "
          "never guessed it.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
