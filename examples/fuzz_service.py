#!/usr/bin/env python3
"""Campaign-as-a-service: an in-process tour of ``repro.service``.

Starts a fuzzing server, submits two jobs for two tenants over the
JSON-RPC wire protocol, streams one job's live samples, shows the
per-tenant quota accounting, and drains the server.  The same surface
is reachable out-of-process via ``python -m repro.service serve`` /
``submit`` / ``status`` / ``watch`` / ``drain``.

The punchline is the digest check at the end: a served job's result is
**bit-identical** to running the same campaign directly, because the
service plane (queues, retries, checkpoints, even ``kill -9``) is only
ever allowed to cost wall time — never virtual time.

Run:  python examples/fuzz_service.py
"""

import asyncio
import tempfile

from repro.execution import SupervisedExecutor
from repro.experiments.campaign_runner import build_executor
from repro.fuzzing import Campaign, CampaignConfig
from repro.service import FuzzService, ServiceClient, ServiceConfig
from repro.sim_os import Kernel
from repro.targets import get_target

JOBS = [
    {"tenant": "team-red", "target": "md4c", "budget_ns": 8_000_000,
     "seed": 1},
    {"tenant": "team-blue", "target": "zlib", "budget_ns": 6_000_000,
     "seed": 2},
]


def direct_digest(target: str, seed: int, budget_ns: int) -> str:
    """The same job, run directly — the service must match this."""
    executor = SupervisedExecutor(
        build_executor(target, "closurex", Kernel())
    )
    campaign = Campaign(
        executor, get_target(target).seeds,
        CampaignConfig(budget_ns=budget_ns, seed=seed),
    )
    campaign.start()
    campaign.step_until(campaign.run_start_ns + budget_ns)
    campaign.finish_run()
    return campaign.state_digest()


async def main() -> None:
    state_dir = tempfile.mkdtemp(prefix="fuzz-service-")
    service = FuzzService(ServiceConfig(state_dir=state_dir, workers=2))
    server = asyncio.ensure_future(service.run())
    await service.started.wait()
    host, port = service.endpoint
    print(f"serving on {host}:{port} (state: {state_dir})")

    client = await ServiceClient.connect(host, port)
    job_ids = []
    for job in JOBS:
        accepted = await client.call("submit", job)
        job_ids.append(accepted["job_id"])
        print(f"accepted {accepted['job_id']} "
              f"({job['tenant']}: {job['target']}, "
              f"{job['budget_ns'] / 1e6:.0f}M vns)")

    # Stream the first job's live samples (AFL plot_data flavour).
    def on_sample(method: str, params: dict) -> None:
        print(f"  [{params['job_id']}] clock={params['clock_ns']:>10} "
              f"execs={params['execs']:>5} edges={params['edges']:>4} "
              f"corpus={params['corpus']:>3}")

    finals = [await client.call("watch", {"job_id": job_ids[0]},
                                on_sample)]
    finals.append(await client.call("watch", {"job_id": job_ids[1]}))

    print("\nper-tenant accounting (virtual ns):")
    for row in (await client.call("tenants", {}))["tenants"]:
        print(f"  {row['tenant']:<10} consumed={row['consumed_ns']:>10} "
              f"completed={row['completed']}")

    print("\nresult receipts vs direct runs:")
    for final, job in zip(finals, JOBS):
        reference = direct_digest(
            job["target"], job["seed"], job["budget_ns"]
        )
        verdict = "MATCH" if final["digest"] == reference else "DIVERGED"
        print(f"  {final['job_id']}: {final['digest'][:16]}… "
              f"execs={final['execs']} -> {verdict}")
        assert final["digest"] == reference

    drained = await client.call("drain")
    print(f"\ndrained: {drained['completed']} completed, "
          f"{drained['quarantined']} quarantined")
    await client.close()
    await server


if __name__ == "__main__":
    asyncio.run(main())
