#!/usr/bin/env python3
"""Fault injection + supervised self-healing, deterministically.

Draws a reproducible schedule of infrastructure faults (spawn EAGAIN,
pipe drops, wedged targets, ...), runs a campaign through the
supervised executor ladder, and shows that recovery consumes virtual
budget while the run stays bit-identical for a fixed (seed, plan).
This is the README's Robustness snippet as a runnable script.

Run:  python examples/supervised_fuzz.py
"""

from repro.chaos import FaultInjector, FaultPlan
from repro.execution import ForkServerExecutor, SupervisedExecutor
from repro.fuzzing import Campaign, CampaignConfig
from repro.sim_os import Kernel
from repro.targets import get_target

BUDGET_NS = 8_000_000
SEED = 7


def run_campaign(n_faults):
    spec = get_target("giftext")
    kernel = Kernel()
    inner = ForkServerExecutor(spec.build_baseline(), spec.image_bytes,
                               kernel)
    injector = None
    if n_faults:
        injector = FaultInjector(
            FaultPlan.generate(seed=SEED, n_faults=n_faults),
            clock=kernel.clock,
        )
    executor = SupervisedExecutor(inner, injector=injector)
    campaign = Campaign(executor, spec.seeds,
                        CampaignConfig(budget_ns=BUDGET_NS, seed=SEED))
    return campaign, campaign.run()


def main():
    print("Supervised execution under an injected-fault schedule\n")
    _, calm = run_campaign(n_faults=0)
    campaign, stormy = run_campaign(n_faults=8)

    supervision = campaign.executor.supervision
    print(f"calm run  : {calm.execs} execs, {calm.edges_found} edges")
    print(f"faulted   : {stormy.execs} execs, {stormy.edges_found} edges")
    print(f"supervision: {supervision.recoveries} recoveries, "
          f"{supervision.retries} retries, "
          f"{campaign.executor.stats.respawns} respawns, "
          f"{supervision.quarantined_inputs} quarantined inputs")
    print("\nRecovery is charged to the virtual clock, so the faulted "
          "campaign completes\nits budget with fewer execs — and the same "
          "(seed, plan) replays bit-identically:")

    _, replay = run_campaign(n_faults=8)
    assert (replay.execs, replay.edges_found) == (
        stormy.execs, stormy.edges_found
    )
    print(f"replayed  : {replay.execs} execs, {replay.edges_found} edges "
          f"(identical)")


if __name__ == "__main__":
    main()
