#!/usr/bin/env python3
"""The motivation, live: why naive persistent fuzzing is incorrect.

Reproduces the paper's §1-2 argument on a deliberately stateful target:

1. a *missed crash* — stale global state hides a real bug,
2. a *false crash* — accumulated leaks kill the process on valid input,
3. *non-reproducibility* — the false crash vanishes in a fresh process,

and then shows ClosureX running the identical sequences with
fresh-process behaviour every time.

Run:  python examples/persistent_pathologies.py
"""

from repro.experiments import DEMO_SOURCE, run_motivation


def main():
    print("The stateful demo target:")
    print("-" * 60)
    print(DEMO_SOURCE.strip())
    print("-" * 60)
    print()

    report = run_motivation()

    print("1. MISSED CRASH")
    print("   fresh process on 'C...':     ",
          "CRASH (ground truth)" if report.fresh_crash else "no crash?!")
    print("   naive persistent, 'D...' then 'C...':",
          "no crash — MISSED" if report.persistent_missed_crash else "crash")
    print("   ClosureX,        'D...' then 'C...':",
          "CRASH — caught" if report.closurex_crash else "missed?!")
    print()

    print("2. FALSE CRASH")
    kinds = [k.value for k in report.persistent_false_crashes]
    print(f"   naive persistent after leaky iterations: {kinds or 'none'}")
    print(f"   peak leak {report.persistent_peak_leaked_bytes} bytes, "
          f"{report.persistent_peak_open_fds} open FILE handles")
    print()

    print("3. NON-REPRODUCIBILITY")
    print("   the 'crashing' input, replayed in a fresh process:",
          "crashes" if report.false_crash_reproducible_fresh
          else "does NOT crash — the report is garbage")
    print()

    verdict = ("all three pathologies demonstrated; ClosureX exhibits none"
               if report.demonstrates_incorrectness
               else "unexpected: some pathology did not manifest")
    print(f"verdict: {verdict}")


if __name__ == "__main__":
    main()
