#!/usr/bin/env python3
"""Parallel multi-worker fuzzing as a library, end to end.

Shards one campaign over several workers with deterministic corpus
sync, demonstrates the bit-identity guarantee (two runs, one digest),
and shows the sync protocol's counters.  Equivalent CLI:

  python -m repro.parallel --target md4c --workers 4 --seed 7

Run:  python examples/parallel_fuzz.py
"""

from repro.parallel import ParallelCampaign, ParallelConfig

CONFIG = dict(
    target="md4c",
    n_workers=4,
    seed=7,
    budget_ns=8_000_000,       # 8 virtual ms per worker
    sync_every_ns=2_000_000,   # sync barrier every 2 virtual ms
)


def main():
    print("Parallel campaign: 4 workers, deterministic sync\n")
    result = ParallelCampaign(ParallelConfig(**CONFIG)).run()

    per_worker = ", ".join(
        f"w{i}={r.execs}" for i, r in enumerate(result.workers)
    )
    print(f"rounds            : {result.rounds} "
          f"(sync every {result.sync_every_ns / 1e6:g} vms)")
    print(f"total execs       : {result.total_execs}  ({per_worker})")
    print(f"aggregate rate    : "
          f"{result.aggregate_execs_per_vsecond:,.0f} execs/virtual-sec")
    print(f"merged edges      : {result.merged_edges}")
    print(f"merged corpus     : {len(result.corpus_hashes)} unique inputs")
    print(f"unique crashes    : {result.merged_unique_crashes}")
    print(f"sync protocol     : {result.sync.offered} offered, "
          f"{result.sync.accepted} accepted, "
          f"{result.sync.duplicates} duplicate, {result.sync.stale} stale, "
          f"{result.sync.delivered} delivered")

    # The determinism guarantee: same (seed, n_workers, sync_every)
    # tuple -> bit-identical merged coverage, corpus and crash set.
    again = ParallelCampaign(ParallelConfig(**CONFIG)).run()
    assert again.digest() == result.digest()
    print(f"\nrun twice, one digest: {result.digest()[:32]}...")


if __name__ == "__main__":
    main()
