#!/usr/bin/env python3
"""The integrity sentinel at work: detect, attribute, repair.

Runs a ClosureX campaign with the restore oracle at the strictest
cadence (digest every exec) plus periodic fresh-VM shadow replays,
then prints the sentinel's ledger.  On a healthy target the ledger is
empty — that silence *is* the paper's correctness claim, continuously
verified at runtime.  This is the README's Integrity snippet as a
runnable script.

Run:  python examples/integrity_check.py
"""

from repro.execution import ClosureXExecutor, SupervisedExecutor
from repro.fuzzing import Campaign, CampaignConfig
from repro.integrity import EscalationPolicy, IntegritySentinel
from repro.sim_os import Kernel
from repro.targets import get_target


def main():
    spec = get_target("zlib")
    sentinel = IntegritySentinel(
        EscalationPolicy(digest_every=1, shadow_every=64),
    )
    inner = ClosureXExecutor(
        spec.build_closurex(), spec.image_bytes, Kernel(),
        sentinel=sentinel,
    )
    campaign = Campaign(
        SupervisedExecutor(inner), spec.seeds,
        CampaignConfig(budget_ns=6_000_000, seed=7),
    )
    result = campaign.run()

    summary = sentinel.ledger.summary()
    print(f"campaign : {result.execs} execs, {result.edges_found} edges, "
          f"{result.unique_crashes} unique crash(es)")
    print(f"sentinel : {sentinel.stats.checks} digest checks, "
          f"{sentinel.stats.shadow_runs} shadow replays")
    print(f"ledger   : {summary}")
    assert summary["leaks"] == 0, "ClosureX restoration leaked state!"
    print("\nEvery post-restore state digest matched the pristine "
          "post-boot baseline,\nand every shadowed input behaved "
          "identically in a throwaway fresh VM:\nrestoration is doing "
          "its job.  (The CI 'integrity' job additionally\nsabotages "
          "each state dimension and asserts the sentinel heals it.)")


if __name__ == "__main__":
    main()
