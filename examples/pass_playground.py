#!/usr/bin/env python3
"""Watch the five ClosureX passes transform a program (Figures 3-5).

Compiles a small C target, then applies RenameMainPass, ExitPass,
HeapPass, FilePass, and GlobalPass one at a time, printing what each
did and the relevant IR fragments before/after — the textual version of
the paper's transformation figures.  The module is re-verified (strict
SSA) after every pass, and the static analysis engine gets the last
word: a lint report and the pollution classification of the result.

Run:  python examples/pass_playground.py
"""

import sys

from repro.analysis import analyze_pollution, lint_module
from repro.ir import Call, print_function
from repro.ir.verifier import VerificationError, verify_module
from repro.minic import compile_c
from repro.passes import (
    CoveragePass,
    ExitPass,
    FilePass,
    GlobalPass,
    HeapPass,
    RenameMainPass,
)

SOURCE = r"""
int GLOBAL_VAR;
int GLOBAL_ARR[4];
const char STR_CONST[6] = "magic";
const int INT_CONST = 42;

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    char *buf = (char*)malloc(64);
    long n = fread(buf, 1, 64, f);
    if (n < 4) { exit(2); }
    GLOBAL_VAR += (int)n;
    GLOBAL_ARR[n & 3] = GLOBAL_VAR;
    fclose(f);
    free(buf);
    return GLOBAL_VAR;
}
"""


def call_targets(module):
    return sorted(
        {
            inst.callee.name
            for func in module.defined_functions()
            for inst in func.instructions()
            if isinstance(inst, Call)
        }
    )


def section_map(module):
    return {name: var.section for name, var in module.globals.items()
            if not name.startswith(".str")}


def banner(title):
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def run_verified(pass_, module):
    """Run one pass, then re-verify the module under strict SSA —
    printing every verifier diagnostic instead of a bare traceback if
    the pass broke an invariant."""
    result = pass_.run(module)
    print(result)
    try:
        verify_module(module, strict_ssa=True)
    except VerificationError as failure:
        print(f"VERIFIER: {pass_.name} left the module invalid:")
        for error in failure.errors:
            print(f"  - {error}")
        sys.exit(1)
    return result


def main():
    module = compile_c(SOURCE, "playground")

    banner("BEFORE: the unmodified target")
    print("functions:", [f.name for f in module.defined_functions()])
    print("calls into libc:", call_targets(module))
    print("global sections:", section_map(module))

    banner("Pollution classification of the raw target")
    print(analyze_pollution(module).describe())

    banner("RenameMainPass (paper Table 3, row 1)")
    run_verified(RenameMainPass(), module)
    print("entry point is now:",
          [f.name for f in module.defined_functions()])

    banner("ExitPass — exit() becomes a longjmp back to the harness")
    run_verified(ExitPass(), module)
    print("calls now:", call_targets(module))

    banner("HeapPass — malloc family rerouted through the chunk map")
    run_verified(HeapPass(), module)
    print("calls now:", call_targets(module))

    banner("FilePass — fopen/fclose rerouted through the handle map")
    run_verified(FilePass(), module)
    print("calls now:", call_targets(module))

    banner("GlobalPass (Figure 3) — writable globals change section")
    run_verified(GlobalPass(), module)
    for name, section in section_map(module).items():
        marker = "->" if section == "closure_global_section" else "  "
        print(f"  {marker} {name:12s} {section}")

    banner("CoveragePass — every block gets a guard")
    run_verified(CoveragePass(seed=1), module)

    banner("Lint report for the instrumented module")
    diagnostics = lint_module(module)
    if diagnostics:
        for diagnostic in diagnostics:
            print(" ", diagnostic.describe())
    else:
        print("  clean: no diagnostics")

    banner("The instrumented entry point, in full")
    print(print_function(module.get_function("target_main")))


if __name__ == "__main__":
    main()
