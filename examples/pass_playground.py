#!/usr/bin/env python3
"""Watch the five ClosureX passes transform a program (Figures 3-5).

Compiles a small C target, then applies RenameMainPass, ExitPass,
HeapPass, FilePass, and GlobalPass one at a time, printing what each
did and the relevant IR fragments before/after — the textual version of
the paper's transformation figures.

Run:  python examples/pass_playground.py
"""

from repro.ir import Call, print_function
from repro.minic import compile_c
from repro.passes import (
    CoveragePass,
    ExitPass,
    FilePass,
    GlobalPass,
    HeapPass,
    RenameMainPass,
)

SOURCE = r"""
int GLOBAL_VAR;
int GLOBAL_ARR[4];
const char STR_CONST[6] = "magic";
const int INT_CONST = 42;

int main(int argc, char **argv) {
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    char *buf = (char*)malloc(64);
    long n = fread(buf, 1, 64, f);
    if (n < 4) { exit(2); }
    GLOBAL_VAR += (int)n;
    GLOBAL_ARR[n & 3] = GLOBAL_VAR;
    fclose(f);
    free(buf);
    return GLOBAL_VAR;
}
"""


def call_targets(module):
    return sorted(
        {
            inst.callee.name
            for func in module.defined_functions()
            for inst in func.instructions()
            if isinstance(inst, Call)
        }
    )


def section_map(module):
    return {name: var.section for name, var in module.globals.items()
            if not name.startswith(".str")}


def banner(title):
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def main():
    module = compile_c(SOURCE, "playground")

    banner("BEFORE: the unmodified target")
    print("functions:", [f.name for f in module.defined_functions()])
    print("calls into libc:", call_targets(module))
    print("global sections:", section_map(module))

    banner("RenameMainPass (paper Table 3, row 1)")
    result = RenameMainPass().run(module)
    print(result)
    print("entry point is now:",
          [f.name for f in module.defined_functions()])

    banner("ExitPass — exit() becomes a longjmp back to the harness")
    result = ExitPass().run(module)
    print(result)
    print("calls now:", call_targets(module))

    banner("HeapPass — malloc family rerouted through the chunk map")
    result = HeapPass().run(module)
    print(result)
    print("calls now:", call_targets(module))

    banner("FilePass — fopen/fclose rerouted through the handle map")
    result = FilePass().run(module)
    print(result)
    print("calls now:", call_targets(module))

    banner("GlobalPass (Figure 3) — writable globals change section")
    result = GlobalPass().run(module)
    print(result)
    for name, section in section_map(module).items():
        marker = "->" if section == "closure_global_section" else "  "
        print(f"  {marker} {name:12s} {section}")

    banner("CoveragePass — every block gets a guard")
    result = CoveragePass(seed=1).run(module)
    print(result)

    banner("The instrumented entry point, in full")
    print(print_function(module.get_function("target_main")))


if __name__ == "__main__":
    main()
