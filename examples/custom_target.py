#!/usr/bin/env python3
"""Bring your own target: write C, register it, fuzz it, validate it.

The downstream-user story: you have a parser you want to fuzz under
ClosureX.  Write it in MiniC, wrap it in a TargetSpec, and every tool
in the library — instrumentation, campaigns, triage, the §6.1.4
correctness checks — works on it unchanged.

Run:  python examples/custom_target.py
"""

import random

from repro.correctness import check_dataflow_equivalence, run_memcheck
from repro.execution import ClosureXExecutor
from repro.fuzzing import Campaign, CampaignConfig
from repro.sim_os import Kernel
from repro.targets.framework import PlantedBug, TargetSpec
from repro.vm.errors import TrapKind

# An INI-style key=value config parser with two planted bugs.
SOURCE = r"""
int sections_seen;
int keys_seen;
char last_section[32];
int depth_table[8];

long line_length(char *p, long max) {
    long n = 0;
    while (n < max && p[n] && p[n] != '\n') { n++; }
    return n;
}

/* BUG ini-1: section nesting depth indexes a fixed table unchecked. */
void note_depth(long depth) {
    depth_table[depth]++;
}

/* BUG ini-2: '=' at position 0 makes the key length -1 -> memcpy. */
void copy_key(char *line, long eq_at) {
    char key[32];
    long n = eq_at - 1;
    if (n > 30) { n = 30; }
    memcpy(key, line + 1, n);
    keys_seen++;
}

int main(int argc, char **argv) {
    char buf[512];
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    long len = fread(buf, 1, 512, f);
    fclose(f);
    if (len < 3) { exit(2); }
    long off = 0;
    while (off < len) {
        long n = line_length(buf + off, len - off);
        char *line = buf + off;
        if (n > 0 && line[0] == '[') {
            long depth = 0;
            while (depth < n && line[depth] == '[') { depth++; }
            note_depth(depth);
            sections_seen++;
        } else if (n > 1) {
            long eq = 0;
            while (eq < n && line[eq] != '=') { eq++; }
            if (eq < n) { copy_key(line, eq); }
        }
        off += n + 1;
    }
    return sections_seen + keys_seen > 0 ? 0 : 3;
}
"""

SPEC = TargetSpec(
    name="ini-parser",
    input_format="ini",
    image_bytes=150_000,
    source=SOURCE,
    seeds=[
        b"[core]\nname=value\nmode=7\n",
        b"[[nested]]\nkey=1\n",
        b"a=b\nc=d\n[tail]\n",
    ],
    bugs=[
        PlantedBug("ini-1", "section depth unchecked against table size",
                   TrapKind.ARRAY_OOB, "note_depth",
                   "Array out of bounds access"),
        PlantedBug("ini-2", "'=' at column 0 drives memcpy size negative",
                   TrapKind.NEGATIVE_MEMCPY, "copy_key",
                   "Memcpy with negative size"),
    ],
    description="user-supplied INI parser",
)


def main():
    print(f"custom target: {SPEC.name} ({len(SPEC.bugs)} planted bugs)\n")

    # 1. fuzz it under ClosureX
    executor = ClosureXExecutor(SPEC.build_closurex(), SPEC.image_bytes, Kernel())
    campaign = Campaign(executor, SPEC.seeds,
                        CampaignConfig(budget_ns=60_000_000, seed=11))
    result = campaign.run()
    print(f"fuzzed {result.execs} execs, {result.unique_crashes} unique crashes")
    for report in result.crash_reports:
        bug = SPEC.find_bug(report.identity)
        label = bug.bug_id if bug else "UNEXPECTED"
        print(f"  [{label}] {report.describe()}")

    # 2. validate ClosureX's correctness on *your* target
    module = SPEC.build_closurex()
    rng = random.Random(0)
    pollution = [bytes(rng.randrange(256) for _ in range(20)) for _ in range(30)]
    dataflow = check_dataflow_equivalence(module, SPEC.seeds[0], pollution)
    memcheck = run_memcheck(module, SPEC.seeds * 5)
    print(f"\ndataflow equivalence after pollution: {dataflow.describe()}")
    print(f"memcheck: {memcheck.describe()}")


if __name__ == "__main__":
    main()
