#!/usr/bin/env python3
"""Observability tour: traces, AFL-style stats files, VM profiling.

Everything is stamped in *virtual* nanoseconds — the simulated
kernel's clock — so two runs with the same seed produce bit-identical
traces and reports.  This is the README's Observability snippet as a
runnable script.

Run:  python examples/observability.py
"""

import tempfile
from pathlib import Path

from repro.execution import ClosureXExecutor
from repro.fuzzing import Campaign, CampaignConfig
from repro.sim_os import Kernel
from repro.targets import get_target
from repro.telemetry import ProfileReport, TelemetryConfig, read_jsonl


def main():
    spec = get_target("md4c")
    out = Path(tempfile.mkdtemp(prefix="repro-observability-"))

    config = CampaignConfig(budget_ns=6_000_000, seed=7)
    config.telemetry = TelemetryConfig(
        enabled=True,
        sink="jsonl", jsonl_path=str(out / "trace.jsonl"),
        report_dir=str(out),       # AFL-style fuzzer_stats + plot_data
        profile_vm=True,           # per-opcode / per-libc-call counts
    )
    executor = ClosureXExecutor(
        spec.build_closurex(), spec.image_bytes, Kernel()
    )
    campaign = Campaign(executor, spec.seeds, config)
    result = campaign.run()
    print(f"campaign: {result.execs} execs, {result.edges_found} edges, "
          f"{result.unique_crashes} unique crash(es)\n")

    print("afl-fuzz-style status (virtual-clock timestamps):")
    print(campaign.reporter.render_status())

    stats = (out / "fuzzer_stats").read_text().splitlines()
    print(f"\n{out / 'fuzzer_stats'} (AFL++ key-value dialect):")
    for line in stats[:8]:
        print(f"  {line}")
    print(f"  ... ({len(stats)} keys total; plot_data alongside)")

    events = read_jsonl(str(out / "trace.jsonl"))
    kinds = {}
    for event in events:
        kinds[event.name] = kinds.get(event.name, 0) + 1
    top = sorted(kinds.items(), key=lambda kv: -kv[1])[:5]
    print(f"\ntrace.jsonl: {len(events)} events; most frequent:")
    for name, count in top:
        print(f"  {count:6d}  {name}")

    print("\nVM hot spots over the whole campaign:")
    print(ProfileReport.from_executor(executor).render(top=5))

    counters = campaign.telemetry.metrics.snapshot()["counters"]
    print(f"metrics registry: exec.total={counters.get('exec.total')}")


if __name__ == "__main__":
    main()
