#!/usr/bin/env python3
"""Domain scenario: hunt the gpmf-parser 0-days (paper Table 7).

gpmf-parser is the GoPro telemetry parser the paper fuzzed; its
stand-in here carries six planted bugs matching Table 7's rows (two
divisions by zero, two unaddressable accesses, an invalid write, an
invalid read).  This example runs a ClosureX campaign against it,
triages crashes against the bug manifest, and prints a Table 7-style
per-bug report.

Run:  python examples/fuzz_gpmf.py [virtual-ms budget, default 120]
"""

import sys

from repro.execution import ClosureXExecutor
from repro.fuzzing import Campaign, CampaignConfig
from repro.sim_os import Kernel
from repro.targets import get_target


def main():
    budget_ms = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    spec = get_target("gpmf-parser")
    print(f"target: {spec.name} ({spec.input_format}), "
          f"{len(spec.bugs)} bugs planted, "
          f"budget {budget_ms} virtual ms\n")

    executor = ClosureXExecutor(spec.build_closurex(), spec.image_bytes, Kernel())
    campaign = Campaign(
        executor, spec.seeds,
        CampaignConfig(budget_ns=budget_ms * 1_000_000, seed=3),
    )
    result = campaign.run()

    print(f"executed {result.execs} test cases in "
          f"{result.elapsed_ns / 1e9:.3f} virtual seconds "
          f"({result.execs_per_second:,.0f}/s)")
    print(f"corpus grew to {result.corpus_size} entries, "
          f"{result.edges_found} coverage map cells hit")
    print(f"{result.total_crashes} crashes, "
          f"{result.unique_crashes} unique after dedup\n")

    found = {}
    unexpected = []
    for report in result.crash_reports:
        bug = spec.find_bug(report.identity)
        if bug is None:
            unexpected.append(report)
        else:
            found[bug.bug_id] = report

    print(f"{'bug':12} {'type':28} {'found at (vs)':>14}  description")
    for bug in spec.bugs:
        report = found.get(bug.bug_id)
        when = f"{report.found_at_ns / 1e9:.3f}" if report else "not found"
        print(f"{bug.bug_id:12} {bug.table7_label:28} {when:>14}  "
              f"{bug.description}")
    for report in unexpected:
        print(f"{'<unknown>':12} {report.kind.value:28} "
              f"{report.found_at_ns / 1e9:>14.3f}  (not in manifest!)")

    missing = len(spec.bugs) - len(found)
    if missing:
        print(f"\n{missing} bug(s) still hiding — raise the budget: "
              f"python examples/fuzz_gpmf.py {budget_ms * 4}")
    else:
        print("\nAll six gpmf-parser bugs found.")


if __name__ == "__main__":
    main()
