#!/usr/bin/env python3
"""Run a small experiment matrix through the experiment platform.

Compares closurex vs forkserver on one target over a few seeded
trials, then prints the statistical report: per-target ranking with
bootstrap confidence intervals, pairwise Mann-Whitney U p-values and
Vargha-Delaney Â₁₂ effect sizes, and coverage-growth sparklines on the
virtual clock.  The whole pipeline is deterministic: the store digest
printed at the end is a pure function of the spec.

This is the API behind ``python -m repro.experiments.platform``; see
docs/experiments.md for the spec format and how to read the report.

Run:  python examples/run_experiment.py
"""

import tempfile
from pathlib import Path

from repro.experiments.platform import (
    ExperimentSpec,
    ReportGenerator,
    ResultsStore,
    TrialScheduler,
)

MS = 1_000_000  # virtual nanoseconds per virtual millisecond


def main():
    spec = ExperimentSpec(
        name="example",
        targets=["giftext"],
        mechanisms=["closurex", "forkserver"],
        trials=2,
        budget_ns=3 * MS,        # per-trial virtual-time budget
        measure_every_ns=1 * MS,  # coverage snapshot cadence
        base_seed=11,
    )
    out = Path(tempfile.mkdtemp(prefix="repro-experiment-"))
    store = ResultsStore(str(out))

    # The scheduler drives every trial through the stepwise Campaign
    # surface, pausing on the measurement cadence so the measurer can
    # append coverage/corpus/crash snapshots to the JSONL store.  Kill
    # it at any point and run() again: finished trials are skipped and
    # half-finished ones resume from their checkpoints.
    finals = TrialScheduler(spec, store, log=print).run()
    print(f"\n{len(finals)} trial(s) complete\n")

    report, digest = ReportGenerator(store).write()
    print(ReportGenerator(store).to_markdown(report))
    print(f"results store : {out}")
    print(f"store digest  : {store.digest()}")
    print(f"report digest : {digest}")


if __name__ == "__main__":
    main()
