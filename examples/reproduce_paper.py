#!/usr/bin/env python3
"""Regenerate the paper's evaluation from the command line.

    python examples/reproduce_paper.py --table 5
    python examples/reproduce_paper.py --table 6 --budget-ms 40 --trials 5
    python examples/reproduce_paper.py --table 7
    python examples/reproduce_paper.py --correctness
    python examples/reproduce_paper.py --figures
    python examples/reproduce_paper.py --profile
    python examples/reproduce_paper.py --all

Sizing: campaigns run for --budget-ms virtual milliseconds and results
are extrapolated to the paper's 24-hour horizon; ratios are
horizon-independent.  Use --targets to restrict the benchmark set.
"""

import argparse
import sys
import time

from repro.experiments import (
    ExperimentConfig,
    run_correctness,
    run_global_pass_figure,
    run_motivation,
    run_pass_ablation,
    run_restore_lifecycle,
    run_spectrum,
    run_table5,
    run_table6,
    run_table7,
    run_timeline,
)
from repro.execution import ClosureXExecutor
from repro.fuzzing import Campaign, CampaignConfig
from repro.sim_os import Kernel
from repro.targets import get_target, target_names
from repro.telemetry import ProfileReport, TelemetryConfig


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--table", type=int, choices=(5, 6, 7), action="append",
                        default=[], help="regenerate Table N")
    parser.add_argument("--correctness", action="store_true",
                        help="run the §6.1.4 validation")
    parser.add_argument("--figures", action="store_true",
                        help="mechanism spectrum + pass-transform figures")
    parser.add_argument("--motivation", action="store_true",
                        help="the persistent-mode pathologies demo")
    parser.add_argument("--ablation", action="store_true",
                        help="pass-ablation study")
    parser.add_argument("--profile", action="store_true",
                        help="telemetry demo: one traced campaign + VM profile")
    parser.add_argument("--all", action="store_true", help="everything")
    parser.add_argument("--budget-ms", type=int, default=20,
                        help="virtual ms per campaign (default 20)")
    parser.add_argument("--trials", type=int, default=3,
                        help="trials per configuration (default 3; paper uses 5)")
    parser.add_argument("--targets", type=str, default="",
                        help="comma-separated target subset")
    return parser.parse_args()


def main():
    args = parse_args()
    if args.all:
        args.table = [5, 6, 7]
        args.correctness = args.figures = args.motivation = True
        args.ablation = args.profile = True
    if not (args.table or args.correctness or args.figures
            or args.motivation or args.ablation or args.profile):
        print("nothing selected; try --all or --table 5", file=sys.stderr)
        return 1

    targets = ([t.strip() for t in args.targets.split(",") if t.strip()]
               or target_names())
    config = ExperimentConfig(
        budget_ns=args.budget_ms * 1_000_000,
        trials=args.trials,
        targets=targets,
    )
    print(f"config: {args.budget_ms} virtual ms/campaign, "
          f"{args.trials} trials, {len(targets)} targets\n")

    def section(title, fn):
        print(f"==== {title} " + "=" * max(0, 58 - len(title)))
        start = time.time()
        fn()
        print(f"---- ({time.time() - start:.1f}s wall)\n")

    if 5 in args.table:
        section("Table 5: test-case execution rate",
                lambda: print(run_table5(config).render()))
    if 6 in args.table:
        section("Table 6: edge coverage",
                lambda: print(run_table6(config).render()))
    if 7 in args.table:
        def table7():
            result = run_table7(config)
            print(result.render())
            speedup = result.aggregate_speedup()
            cx, fk = result.finding_counts()
            if speedup:
                print(f"\naggregate time-to-bug speedup: {speedup:.2f}x "
                      f"(paper: ~1.9x); finding trials {cx} vs {fk}")
        section("Table 7: time-to-bug", table7)
    if args.correctness:
        def correctness():
            result = run_correctness(config, sample_size=4, pollution_rounds=60)
            print(result.render())
            print(f"\nall targets fully correct: {result.all_correct}")
        section("§6.1.4: semantic correctness", correctness)
    if args.figures:
        def figures():
            spectrum = run_spectrum("giftext", iterations=25)
            print(spectrum.render())
            print()
            for name in targets[:4]:
                print(run_global_pass_figure(name).render())
            print()
            print(run_restore_lifecycle(targets[0]).render())
            print()
            print(run_timeline(targets[0], config).render())
        section("Figures: spectrum / pass transforms / timeline", figures)
    if args.motivation:
        section("Motivation: persistent-mode pathologies",
                lambda: print(run_motivation().describe()))
    if args.ablation:
        section("Ablation: drop each pass",
                lambda: print(run_pass_ablation("bsdtar").render()))
    if args.profile:
        def profile():
            spec = get_target(targets[0])
            executor = ClosureXExecutor(
                spec.build_closurex(), spec.image_bytes, Kernel())
            campaign_config = CampaignConfig(budget_ns=config.budget_ns, seed=1)
            campaign_config.telemetry = TelemetryConfig(
                enabled=True, sink="memory", profile_vm=True)
            campaign = Campaign(executor, spec.seeds, campaign_config)
            campaign.run()
            print(campaign.reporter.render_status())
            print()
            print(ProfileReport.from_executor(executor).render(top=8))
            trace = campaign.telemetry.tracer.sink.events
            execs = sum(1 for e in trace if e.name == "exec")
            print(f"\ntrace: {len(trace)} events ({execs} exec spans), "
                  f"all stamped in virtual ns")
        section(f"Telemetry: traced campaign on {targets[0]}", profile)
    return 0


if __name__ == "__main__":
    sys.exit(main())
