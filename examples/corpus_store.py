#!/usr/bin/env python3
"""Shared corpus storage: dedup across campaigns, cmin, self-healing.

Two tenants fuzz the same target through one content-addressed
:class:`repro.store.CorpusStore`.  The store deduplicates every input
they have in common (physical bytes are stored once, referenced
twice), `distill` computes an afl-cmin-style minimal seed set covering
the same coverage map, an injected bit flip demonstrates read-time
self-healing from the mirror replica, and `fsck` verifies the whole
state tree at the end — the same walk `python -m repro.store fsck`
performs from the command line.

Run:  python examples/corpus_store.py
"""

import os
import tempfile

from repro.execution import ForkServerExecutor
from repro.fuzzing import Campaign, CampaignConfig
from repro.fuzzing.corpus import input_hash
from repro.minic import compile_c
from repro.passes import PassManager, baseline_passes
from repro.sim_os import Kernel
from repro.store import CorpusStore, fsck_tree

SOURCE = r"""
int main(int argc, char **argv) {
    char buf[32];
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    long n = fread(buf, 1, 32, f);
    fclose(f);
    if (n < 2) { exit(2); }
    long sum = 0;
    long i = 0;
    while (i < n) { sum += (long)buf[i]; i += 1; }
    if (buf[0] == 'C' && buf[1] == 'X' && n > 6) {
        int *p = NULL;
        *p = 1;                    /* the planted bug */
    }
    return (int)sum;
}
"""

SEEDS = [b"hello world", b"CXseed"]
BUDGET_NS = 12_000_000  # 12 virtual milliseconds per tenant


def executor():
    module = compile_c(SOURCE, "corpus-store-demo")
    PassManager(baseline_passes(11)).run(module)
    return ForkServerExecutor(module, 300_000, Kernel())


def fuzz(store, owner, seed):
    campaign = Campaign(executor(), SEEDS, CampaignConfig(
        budget_ns=BUDGET_NS, seed=seed,
        corpus_store=store, corpus_owner=owner,
    ))
    result = campaign.run()
    print(f"{owner:>10}: {result.execs:5d} execs, "
          f"{result.corpus_size} corpus entries, "
          f"{result.unique_crashes} unique crash(es)")
    return campaign


def main():
    tree = tempfile.mkdtemp(prefix="corpus-store-demo-")
    store = CorpusStore(os.path.join(tree, "corpus"))
    print("Two tenants fuzz the same target through one shared store:\n")
    tenant_a = fuzz(store, "tenant-a", seed=7)
    fuzz(store, "tenant-b", seed=7)

    refs_a = store.refs("tenant-a")
    refs_b = store.refs("tenant-b")
    shared = refs_a & refs_b
    stats = store.stats()
    print(f"\nreferences: {len(refs_a)} + {len(refs_b)} across tenants, "
          f"{len(shared)} shared")
    print(f"physical objects stored once: {stats['objects']} "
          f"({stats['bytes']} bytes) — "
          f"{len(refs_a) + len(refs_b) - stats['objects']} duplicate "
          f"payload(s) never written twice")

    # afl-cmin: the cheapest subset whose coverage OR equals the full
    # corpus's.  Weight = exec cost x size, cheapest first.
    entries = [
        (input_hash(e.data), e.coverage_signature,
         e.exec_ns * max(1, len(e.data)))
        for e in tenant_a.corpus.entries
    ]
    distilled = store.distill(entries)
    print(f"\ndistilled tenant-a's {len(entries)}-entry corpus to "
          f"{len(distilled)} seed(s) covering the same map")
    store.retain("tenant-a", set(distilled))
    print(f"retained only those: tenant-a now holds "
          f"{len(store.refs('tenant-a'))} reference(s)")

    # Silent bit rot self-heals at read time from the mirror replica.
    victim = sorted(distilled)[0]
    path = store.object_path(victim)
    data = bytearray(open(path, "rb").read())
    data[len(data) // 2] ^= 1
    open(path, "wb").write(bytes(data))
    restored = store.get(victim)
    print(f"\nflipped one bit of object {victim[:12]}...; get() healed it "
          f"from the replica ({len(restored)} bytes verified)")

    report = fsck_tree(tree)
    print(f"fsck over {tree}: ok={report.ok}, "
          f"{len(report.findings)} finding(s)")
    assert report.ok


if __name__ == "__main__":
    main()
