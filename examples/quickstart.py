#!/usr/bin/env python3
"""Quickstart: compile a target, instrument it with ClosureX, fuzz it.

This walks the whole pipeline in ~30 lines of API:

  MiniC source -> MiniIR module -> ClosureX passes -> persistent harness
  -> coverage-guided campaign -> crashes + speedup vs AFL++'s forkserver.

Run:  python examples/quickstart.py
"""

from repro.execution import ClosureXExecutor, ForkServerExecutor
from repro.fuzzing import Campaign, CampaignConfig
from repro.minic import compile_c
from repro.passes import PassManager, baseline_passes, closurex_passes
from repro.sim_os import Kernel
from repro.telemetry import ProfileReport, TelemetryConfig

# A little PNG-chunk-flavoured parser with one planted bug.
SOURCE = r"""
int chunks_seen;
long payload_bytes;

int main(int argc, char **argv) {
    char buf[256];
    char *f = fopen(argv[1], "r");
    if (!f) { exit(1); }
    long n = fread(buf, 1, 256, f);
    fclose(f);
    if (n < 4) { exit(2); }
    if (buf[0] != 'P' || buf[1] != 'K') { exit(3); }
    long off = 2;
    while (off + 2 <= n) {
        char kind = buf[off];
        long len = (long)buf[off + 1];
        off += 2;
        if (off + len > n) { exit(4); }
        chunks_seen++;
        payload_bytes += len;
        if (kind == 'Q' && len == 0) {
            int *p = NULL;
            *p = 1;                       /* the bug: empty Q chunk */
        }
        off += len;
    }
    return chunks_seen;
}
"""

SEEDS = [
    b"PK" + b"A\x04data" + b"B\x02hi",
    b"PK" + b"Q\x03abc",
    b"PK" + b"Z\x00",
]

IMAGE_BYTES = 300_000
BUDGET_NS = 30_000_000  # 30 virtual milliseconds per mechanism


def build(pipeline_factory):
    module = compile_c(SOURCE, "quickstart")
    PassManager(pipeline_factory(coverage_seed=1)).run(module)
    return module


def fuzz(name, executor, telemetry=None):
    config = CampaignConfig(budget_ns=BUDGET_NS, seed=7)
    if telemetry is not None:
        config.telemetry = telemetry
    campaign = Campaign(executor, SEEDS, config)
    result = campaign.run()
    print(f"{name:>12}: {result.execs:6d} execs "
          f"({result.execs_per_second:,.0f}/virtual-sec), "
          f"{result.edges_found} edges, "
          f"{result.unique_crashes} unique crash(es)")
    for report in result.crash_reports:
        print(f"{'':>14}crash: {report.describe()}")
    return campaign, result


def main():
    print("ClosureX quickstart: one bug, two execution mechanisms\n")
    # Telemetry is off by default; here the ClosureX run opts in to an
    # in-memory trace plus the VM profiler so we can show the AFL-style
    # status screen and hot-spot table afterwards.
    cx_campaign, closurex = fuzz(
        "ClosureX",
        ClosureXExecutor(build(closurex_passes), IMAGE_BYTES, Kernel()),
        telemetry=TelemetryConfig(enabled=True, sink="memory", profile_vm=True),
    )
    _, forkserver = fuzz(
        "forkserver",
        ForkServerExecutor(build(baseline_passes), IMAGE_BYTES, Kernel()),
    )
    speedup = closurex.execs_per_second / forkserver.execs_per_second
    print(f"\nClosureX executed {speedup:.2f}x more test cases per virtual "
          f"second than the AFL++-style forkserver.")
    if closurex.unique_crashes and forkserver.unique_crashes:
        print("Both mechanisms see the same bug; ClosureX just gets there on "
              "a fraction of the process-management budget.")
    elif closurex.unique_crashes:
        print("The extra throughput paid off: only ClosureX reached the bug "
              "within this budget.")

    print("\nAFL-style status for the ClosureX campaign "
          "(virtual-clock timestamps):\n")
    print(cx_campaign.reporter.render_status())
    print("\nVM hot spots over the whole campaign:\n")
    print(ProfileReport.from_executor(cx_campaign.executor).render(top=5))


if __name__ == "__main__":
    main()
